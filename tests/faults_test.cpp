// The reliability gate for the faults subsystem: the fault model is
// deterministic (same seed => same fault set => same telemetry), the
// replicated schemes survive exactly their theoretical tolerance
// (majority: floor((r-1)/2) colluding bad copies; IDA: d-b erasures) and
// break at exactly one more, erasure-only faults NEVER cause silent
// wrong reads on redundant schemes, and the single-copy baselines lose
// data immediately — the paper's redundancy earning its keep.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "hashing/mv_memory.hpp"
#include "ida/ida_memory.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/memory_map.hpp"
#include "pram/memory_system.hpp"

namespace pramsim {
namespace {

// Test hooks: kill an explicit module set and/or stick explicit
// (entity, copy) cells at one colluding value — the adversary the
// tolerance theorems quantify over.
class CraftedHooks final : public pram::FaultHooks {
 public:
  std::unordered_set<std::uint32_t> dead;
  std::unordered_set<std::uint64_t> stuck;  ///< entity * 64 + copy
  pram::Word stuck_value = 999;

  [[nodiscard]] bool module_dead(ModuleId module,
                                 std::uint64_t step) const override {
    return step >= onset && dead.count(module.index()) != 0;
  }
  [[nodiscard]] bool stuck_at(std::uint64_t entity, std::uint32_t copy,
                              std::uint64_t step,
                              pram::Word& value) const override {
    if (step < onset || stuck.count(entity * 64 + copy) == 0) {
      return false;
    }
    value = stuck_value;
    return true;
  }
  [[nodiscard]] bool corrupt_write(std::uint64_t, std::uint32_t,
                                   std::uint64_t, std::uint64_t,
                                   pram::Word&) const override {
    return false;
  }
  /// Faults activate from this step on (0 = static, always active).
  std::uint64_t onset = 0;
};

pram::Word read_one(pram::MemorySystem& memory, VarId var) {
  const VarId reads[] = {var};
  pram::Word values[] = {0};
  (void)memory.step(reads, values, {});
  return values[0];
}

void write_one(pram::MemorySystem& memory, VarId var, pram::Word value) {
  const pram::VarWrite writes[] = {{var, value}};
  (void)memory.step({}, {}, writes);
}

// ------------------------------------------------ FaultModel ------------

TEST(FaultModel, SameSeedSameFaultSet) {
  const faults::FaultSpec spec{.seed = 42,
                               .dead_modules = 5,
                               .module_kill_rate = 0.1,
                               .stuck_rate = 0.05,
                               .corruption_rate = 0.2};
  const faults::FaultModel a(spec, 64);
  const faults::FaultModel b(spec, 64);
  EXPECT_EQ(a.dead_module_count(), b.dead_module_count());
  EXPECT_GE(a.dead_module_count(), 5u);
  for (std::uint32_t module = 0; module < 64; ++module) {
    EXPECT_EQ(a.module_dead(ModuleId(module), 0),
              b.module_dead(ModuleId(module), 0));
  }
  for (std::uint64_t entity = 0; entity < 200; ++entity) {
    for (std::uint32_t copy = 0; copy < 4; ++copy) {
      pram::Word va = 0;
      pram::Word vb = 0;
      ASSERT_EQ(a.stuck_at(entity, copy, 0, va),
                b.stuck_at(entity, copy, 0, vb));
      ASSERT_EQ(va, vb);
      pram::Word wa = 7;
      pram::Word wb = 7;
      ASSERT_EQ(a.corrupt_write(entity, copy, 3, 0, wa),
                b.corrupt_write(entity, copy, 3, 0, wb));
      ASSERT_EQ(wa, wb);
    }
  }
}

TEST(FaultModel, DifferentSeedsDiverge) {
  const faults::FaultSpec a_spec{.seed = 1, .module_kill_rate = 0.5};
  const faults::FaultSpec b_spec{.seed = 2, .module_kill_rate = 0.5};
  const faults::FaultModel a(a_spec, 256);
  const faults::FaultModel b(b_spec, 256);
  std::uint32_t differing = 0;
  for (std::uint32_t module = 0; module < 256; ++module) {
    differing += a.module_dead(ModuleId(module), 0) !=
                 b.module_dead(ModuleId(module), 0);
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultModel, ExactKillCountAndRateCompose) {
  const faults::FaultModel exact({.seed = 9, .dead_modules = 7}, 32);
  EXPECT_EQ(exact.dead_module_count(), 7u);
  EXPECT_EQ(exact.dead_modules().size(), 7u);
  const faults::FaultModel none({.seed = 9}, 32);
  EXPECT_EQ(none.dead_module_count(), 0u);
  EXPECT_TRUE(none.spec().inert());
}

TEST(FaultModel, AtRateScalesOnlyRateAxes) {
  const faults::FaultSpec proto{.seed = 5,
                                .dead_modules = 3,
                                .module_kill_rate = 1.0,
                                .stuck_rate = 0.5,
                                .corruption_rate = 1.0};
  const auto scaled = faults::at_rate(proto, 0.1);
  EXPECT_EQ(scaled.seed, 5u);
  EXPECT_EQ(scaled.dead_modules, 3u);
  EXPECT_DOUBLE_EQ(scaled.module_kill_rate, 0.1);
  EXPECT_DOUBLE_EQ(scaled.stuck_rate, 0.05);
  EXPECT_DOUBLE_EQ(scaled.corruption_rate, 0.1);
}

// ------------------------------------- majority tolerance thresholds ----

TEST(MajorityFaults, SurvivesFloorHalfBadCopiesAndBreaksAtOneMore) {
  auto memory = core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                   .n = 16,
                                   .seed = 11});
  auto* majority_mem =
      dynamic_cast<majority::MajorityMemory*>(memory.get());
  ASSERT_NE(majority_mem, nullptr);
  const std::uint32_t r = majority_mem->map().redundancy();
  ASSERT_GE(r, 3u);
  const std::uint32_t tolerance = (r - 1) / 2;
  const VarId var(7);

  // floor((r-1)/2) colluding stuck copies: the vote recovers.
  {
    CraftedHooks hooks;
    for (std::uint32_t copy = 0; copy < tolerance; ++copy) {
      hooks.stuck.insert(var.index() * 64 + copy);
    }
    ASSERT_TRUE(memory->set_fault_hooks(&hooks));
    write_one(*memory, var, 1234);
    EXPECT_EQ(read_one(*memory, var), 1234);
    const auto stats = memory->reliability();
    EXPECT_GE(stats.faults_masked, 1u);
    EXPECT_EQ(stats.uncorrectable, 0u);
  }
  // One more colluding bad copy: the fake majority wins — wrong value.
  {
    CraftedHooks hooks;
    for (std::uint32_t copy = 0; copy < tolerance + 1; ++copy) {
      hooks.stuck.insert(var.index() * 64 + copy);
    }
    ASSERT_TRUE(memory->set_fault_hooks(&hooks));
    write_one(*memory, var, 1234);
    EXPECT_EQ(read_one(*memory, var), hooks.stuck_value);
  }
}

TEST(MajorityFaults, SurvivesAllButOneErasureThenGoesUncorrectable) {
  auto memory = core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                   .n = 16,
                                   .seed = 13});
  const memmap::MemoryMap* map = memory->memory_map();
  ASSERT_NE(map, nullptr);
  const VarId var(3);
  const auto modules = map->copies(var);

  // Kill every module holding a copy except the last: still correct
  // (erasures are known-bad; the lone survivor is trusted).
  CraftedHooks hooks;
  for (std::size_t i = 0; i + 1 < modules.size(); ++i) {
    hooks.dead.insert(modules[i].index());
  }
  ASSERT_TRUE(memory->set_fault_hooks(&hooks));
  write_one(*memory, var, 555);
  EXPECT_EQ(read_one(*memory, var), 555);
  EXPECT_GE(memory->reliability().faults_masked, 1u);
  EXPECT_EQ(memory->reliability().uncorrectable, 0u);

  // Kill the last one too: the variable is gone, and the scheme KNOWS
  // (flagged uncorrectable, not a silent lie).
  hooks.dead.insert(modules.back().index());
  write_one(*memory, var, 777);
  EXPECT_EQ(read_one(*memory, var), 0);
  EXPECT_GE(memory->reliability().uncorrectable, 1u);
}

// ------------------------------------------ IDA tolerance thresholds ----

TEST(IdaFaults, SurvivesDMinusBErasuresAndBreaksAtOneMore) {
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 32, .seed = 21};
  const std::uint64_t m_vars = 64;
  // Reconstruct the share placement the memory uses (same parameters,
  // same seed) to find which modules hold block 0's shares.
  const std::uint64_t n_blocks = (m_vars + config.b - 1) / config.b;
  const memmap::HashedMap placement(n_blocks, config.n_modules, config.d,
                                    config.seed);
  const auto share_modules = placement.copies(VarId(0));
  ASSERT_EQ(share_modules.size(), config.d);
  const VarId var(1);  // lives in block 0

  // d - b erasures: reconstruction from the b survivors is exact.
  {
    ida::IdaMemory memory(m_vars, config);
    CraftedHooks hooks;
    for (std::uint32_t j = 0; j < config.d - config.b; ++j) {
      hooks.dead.insert(share_modules[j].index());
    }
    ASSERT_TRUE(memory.set_fault_hooks(&hooks));
    write_one(memory, var, 4242);
    EXPECT_EQ(read_one(memory, var), 4242);
    const auto stats = memory.reliability();
    EXPECT_GE(stats.faults_masked, 1u);
    EXPECT_EQ(stats.uncorrectable, 0u);
  }
  // One more erasure: below the reconstruction threshold — flagged.
  {
    ida::IdaMemory memory(m_vars, config);
    CraftedHooks hooks;
    for (std::uint32_t j = 0; j < config.d - config.b + 1; ++j) {
      hooks.dead.insert(share_modules[j].index());
    }
    ASSERT_TRUE(memory.set_fault_hooks(&hooks));
    write_one(memory, var, 4242);
    EXPECT_EQ(read_one(memory, var), 0);
    const auto stats = memory.reliability();
    EXPECT_GE(stats.uncorrectable, 1u);
    EXPECT_GE(stats.shares_short, 1u);
  }
}

TEST(IdaFaults, StuckShareSilentlyPoisonsTheBlock) {
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 32, .seed = 23};
  ida::IdaMemory memory(64, config);
  CraftedHooks hooks;
  hooks.stuck.insert(0 * 64 + 0);  // block 0, share 0 stuck
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));
  write_one(memory, VarId(1), 4242);
  // IDA corrects erasures, not errors: the stuck share joins the
  // interpolation and the recovered block is garbage — silently.
  EXPECT_NE(read_one(memory, VarId(1)), 4242);
  EXPECT_EQ(memory.reliability().uncorrectable, 0u);
}

// ---------------------------------------- IDA share checksums -----------

TEST(IdaFaults, CheckSharesTurnStuckPoisonIntoMaskedFault) {
  // Same adversary as StuckShareSilentlyPoisonsTheBlock, but with
  // per-share checksums: the stuck share's value no longer matches the
  // checksum its writer stored, so it is EXCLUDED from the
  // interpolation like an erasure and the surviving 7 >= b shares
  // recover the true block — a masked fault instead of a silent lie.
  ida::IdaMemoryConfig config{.b = 4, .d = 8, .n_modules = 32, .seed = 23};
  config.check_shares = true;
  ida::IdaMemory memory(64, config);
  // Detection is bought with one checksum word per share: 2d/b storage.
  EXPECT_DOUBLE_EQ(memory.storage_redundancy(), 4.0);
  CraftedHooks hooks;
  hooks.stuck.insert(0 * 64 + 0);  // block 0, share 0 stuck
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));
  write_one(memory, VarId(1), 4242);
  EXPECT_EQ(read_one(memory, VarId(1)), 4242);
  EXPECT_GE(memory.reliability().faults_masked, 1u);
  EXPECT_EQ(memory.reliability().uncorrectable, 0u);
}

TEST(IdaFaults, CheckSharesFlagOutageWhenTooFewSharesVerify) {
  // d-b+1 stuck shares: detection rejects them all, fewer than b clean
  // shares remain, and the block is a FLAGGED outage — degraded
  // honestly, never silently.
  ida::IdaMemoryConfig config{.b = 4, .d = 8, .n_modules = 32, .seed = 23};
  config.check_shares = true;
  ida::IdaMemory memory(64, config);
  CraftedHooks hooks;
  for (std::uint32_t j = 0; j < config.d - config.b + 1; ++j) {
    hooks.stuck.insert(0 * 64 + j);
  }
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));
  write_one(memory, VarId(1), 4242);
  EXPECT_EQ(read_one(memory, VarId(1)), 0);
  EXPECT_GE(memory.reliability().uncorrectable, 1u);
}

TEST(IdaFaults, CheckSharesEliminateWrongReadsUnderCorruption) {
  // The ROADMAP quantification, as a gate: under silent write
  // corruption the bare IDA scheme lies (the oracle counts wrong
  // reads); with share checksums every corrupted share is detected on
  // decode, so reads are correct or flagged — wrong_reads drops to 0.
  const faults::FaultSpec corruption{.seed = 7, .corruption_rate = 0.3};
  const core::StressOptions stress{.steps_per_family = 3, .seed = 11,
                                   .trials = 2};
  core::SimulationPipeline bare(
      {.kind = core::SchemeKind::kIda, .n = 16, .seed = 33});
  core::SimulationPipeline checked({.kind = core::SchemeKind::kIda,
                                    .n = 16,
                                    .seed = 33,
                                    .ida_check_shares = true});
  const auto bare_run = bare.run_with_faults(corruption, stress);
  const auto checked_run = checked.run_with_faults(corruption, stress);
  EXPECT_GT(bare_run.reliability.wrong_reads, 0u);
  EXPECT_EQ(checked_run.reliability.wrong_reads, 0u);
  EXPECT_GT(checked_run.reliability.corrupt_stores, 0u);
}

TEST(IdaFaults, CheckSharesTransparentWhenHealthy) {
  // No hooks: checksums are written and never consulted — values match
  // the bare scheme bit-for-bit.
  ida::IdaMemoryConfig config{.b = 4, .d = 8, .n_modules = 32, .seed = 23};
  ida::IdaMemory bare(64, config);
  config.check_shares = true;
  ida::IdaMemory checked(64, config);
  for (std::uint32_t v = 0; v < 64; v += 3) {
    write_one(bare, VarId(v), 1000 + v);
    write_one(checked, VarId(v), 1000 + v);
  }
  for (std::uint32_t v = 0; v < 64; ++v) {
    ASSERT_EQ(read_one(bare, VarId(v)), read_one(checked, VarId(v))) << v;
  }
}

// ---------------------------------------- single-copy fragility ---------

TEST(SingleCopyFaults, HashedBaselineLosesDeadModuleAddressRange) {
  hashing::MvMemory memory(256, {.n_modules = 8, .k_wise = 2, .seed = 3});
  // Find a variable and kill exactly its module.
  const VarId var(17);
  CraftedHooks hooks;
  hooks.dead.insert(memory.module_of(var));
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));
  write_one(memory, var, 99);
  EXPECT_EQ(read_one(memory, var), 0);  // gone: nothing to vote with
  EXPECT_GE(memory.reliability().uncorrectable, 1u);
  EXPECT_GE(memory.reliability().writes_dropped, 1u);
}

// ------------------------------------------- FaultableMemory ------------

TEST(FaultableMemory, OracleCountsSilentWrongReads) {
  // Corruption rate 1: every committed word is wrong, and the
  // single-copy scheme has no redundancy to mask it — the checker must
  // flag the read as silently wrong.
  auto inner = std::make_unique<hashing::MvMemory>(
      64, hashing::MvMemoryConfig{.n_modules = 8, .k_wise = 2, .seed = 5});
  faults::FaultableMemory memory(std::move(inner),
                                 {.seed = 31, .corruption_rate = 1.0});
  EXPECT_TRUE(memory.replica_level_injection());
  write_one(memory, VarId(9), 1000);
  EXPECT_NE(read_one(memory, VarId(9)), 1000);
  const auto stats = memory.reliability();
  EXPECT_GE(stats.corrupt_stores, 1u);
  EXPECT_GE(stats.wrong_reads, 1u);
  EXPECT_EQ(memory.checker().mismatches(), stats.wrong_reads);
}

TEST(FaultableMemory, WrapperLevelFallbackDegradesOpaqueSchemes) {
  // FlatMemory ignores fault hooks; the wrapper degrades it externally.
  // Its one synthetic module dead = the whole memory is an outage —
  // flagged, not silent.
  auto inner = std::make_unique<pram::FlatMemory>(64);
  faults::FaultableMemory memory(std::move(inner),
                                 {.seed = 41, .dead_modules = 1});
  EXPECT_FALSE(memory.replica_level_injection());
  write_one(memory, VarId(5), 77);
  EXPECT_EQ(read_one(memory, VarId(5)), 0);
  const auto stats = memory.reliability();
  EXPECT_GE(stats.writes_dropped, 1u);
  EXPECT_GE(stats.uncorrectable, 1u);
  EXPECT_EQ(stats.wrong_reads, 0u);
}

TEST(FaultableMemory, FlaggedBlockOutagesAreNotCountedAsSilentLies) {
  // Regression: multiple reads of one under-threshold IDA block in a
  // single step are all FLAGGED outages; the oracle must attribute them
  // per read (via flagged_reads), not per block decode, and report zero
  // silent wrong reads under erasure-only faults.
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 8, .seed = 25};
  auto inner = std::make_unique<ida::IdaMemory>(64, config);
  faults::FaultableMemory memory(
      std::move(inner),
      {.seed = 91, .dead_modules = 8});  // every module dead
  ASSERT_TRUE(memory.replica_level_injection());

  const pram::VarWrite writes[] = {
      {VarId(0), 10}, {VarId(1), 11}, {VarId(2), 12}, {VarId(3), 13}};
  (void)memory.step({}, {}, writes);
  const VarId reads[] = {VarId(0), VarId(1), VarId(2), VarId(3)};
  pram::Word values[4] = {0};
  (void)memory.step(reads, values, {});

  const auto stats = memory.reliability();
  EXPECT_GE(stats.uncorrectable, 1u);
  EXPECT_EQ(stats.wrong_reads, 0u);  // all four losses were flagged
}

TEST(FaultableMemory, MajorityMasksWhatSingleCopyCannot) {
  // The same fault spec hits a replicated scheme and the hashed
  // baseline; the replicated scheme answers everything correctly, the
  // baseline has outages. This is the paper's redundancy earning its
  // keep under adversity.
  const faults::FaultSpec spec{.seed = 51, .module_kill_rate = 0.15};
  auto replicated = std::make_unique<faults::FaultableMemory>(
      core::make_memory({.kind = core::SchemeKind::kDmmpc, .n = 16,
                         .seed = 7}),
      spec);
  auto single = std::make_unique<faults::FaultableMemory>(
      core::make_memory({.kind = core::SchemeKind::kHashed, .n = 16,
                         .seed = 7}),
      spec);
  for (std::uint32_t v = 0; v < 64; ++v) {
    write_one(*replicated, VarId(v), 100 + v);
    write_one(*single, VarId(v), 100 + v);
  }
  std::uint32_t replicated_correct = 0;
  std::uint32_t single_correct = 0;
  for (std::uint32_t v = 0; v < 64; ++v) {
    replicated_correct += read_one(*replicated, VarId(v)) == 100 + v;
    single_correct += read_one(*single, VarId(v)) == 100 + v;
  }
  EXPECT_EQ(replicated_correct, 64u);
  EXPECT_LT(single_correct, 64u);
  EXPECT_EQ(replicated->reliability().wrong_reads, 0u);
  EXPECT_GE(single->reliability().uncorrectable, 1u);
}

// ----------------------------------------------- pipeline sweeps --------

TEST(FaultSweep, TelemetryIsDeterministic) {
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  const faults::FaultSpec spec{
      .seed = 61, .module_kill_rate = 0.2, .corruption_rate = 0.05};
  const core::StressOptions stress{
      .steps_per_family = 3, .seed = 17, .trials = 2};
  const auto a = pipeline.run_with_faults(spec, stress);
  const auto b = pipeline.run_with_faults(spec, stress);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.reliability.reads_served, b.reliability.reads_served);
  EXPECT_EQ(a.reliability.faults_masked, b.reliability.faults_masked);
  EXPECT_EQ(a.reliability.erasures_skipped, b.reliability.erasures_skipped);
  EXPECT_EQ(a.reliability.uncorrectable, b.reliability.uncorrectable);
  EXPECT_EQ(a.reliability.wrong_reads, b.reliability.wrong_reads);
  EXPECT_EQ(a.reliability.corrupt_stores, b.reliability.corrupt_stores);
  EXPECT_GT(a.reliability.reads_served, 0u);
}

TEST(FaultSweep, ErasureOnlyFaultsNeverLieOnRedundantSchemes) {
  // Module kills produce outages, never silent wrong values, on both
  // redundancy disciplines: majority votes among survivors that all
  // agree, IDA either reconstructs exactly or flags the block.
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kIda}) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 3});
    core::FaultSweepOptions options;
    options.rates = {0.0, 0.1, 0.3};
    options.proto = {.seed = 71, .module_kill_rate = 1.0,
                     .corruption_rate = 0.0};
    options.stress = {.steps_per_family = 2, .seed = 19};
    const auto sweep = pipeline.run_fault_sweep(options);
    EXPECT_EQ(sweep.total.reliability.wrong_reads, 0u)
        << core::to_string(kind);
    EXPECT_LT(sweep.total.breaking_fault_rate, 0.0) << core::to_string(kind);
    ASSERT_EQ(sweep.levels.size(), 3u);
    EXPECT_EQ(sweep.levels[0].run.reliability.erasures_skipped, 0u);
  }
}

TEST(FaultSweep, CorruptionBreaksTheUnreplicatedBaselineFirst) {
  // Hotspot traffic (everyone hammers variable 0) under write
  // corruption: the single-copy baseline returns the corrupted word on
  // the next read; the majority scheme's vote still recovers at low
  // rates because corrupt copies don't collude.
  core::StressOptions stress;
  stress.steps_per_family = 4;
  stress.seed = 23;
  stress.families = {pram::TraceFamily::kHotspot};
  stress.include_map_adversarial = false;

  core::FaultSweepOptions options;
  options.rates = {0.0, 1.0};
  options.proto = {.seed = 81, .module_kill_rate = 0.0,
                   .corruption_rate = 1.0};
  options.stress = stress;

  core::SimulationPipeline hashed(
      {.kind = core::SchemeKind::kHashed, .n = 16, .seed = 3});
  const auto hashed_sweep = hashed.run_fault_sweep(options);
  EXPECT_DOUBLE_EQ(hashed_sweep.total.breaking_fault_rate, 1.0);
  EXPECT_GT(hashed_sweep.total.reliability.wrong_reads, 0u);

  options.proto.corruption_rate = 0.02;
  core::SimulationPipeline majority_pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  const auto majority_sweep = majority_pipeline.run_fault_sweep(options);
  EXPECT_EQ(majority_sweep.total.reliability.wrong_reads, 0u);
  EXPECT_LT(majority_sweep.total.breaking_fault_rate, 0.0);
}

}  // namespace
}  // namespace pramsim
