// Tests for GF(256) arithmetic, Rabin dispersal (any-b-of-d recovery),
// and the Schuster IdaMemory scheme.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "ida/dispersal.hpp"
#include "ida/gf256.hpp"
#include "ida/ida_memory.hpp"
#include "util/rng.hpp"

namespace pramsim::ida {
namespace {

using pram::VarWrite;
using pram::Word;

// ---------------------------------------------------------- GF(256) -----

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(GF256::add(0b1010, 0b0110), 0b1100);
  EXPECT_EQ(GF256::add(0xFF, 0xFF), 0);  // every element is self-inverse
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto e = static_cast<GF256::Elem>(a);
    EXPECT_EQ(GF256::mul(e, 1), e);
    EXPECT_EQ(GF256::mul(1, e), e);
    EXPECT_EQ(GF256::mul(e, 0), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // In GF(256) with poly 0x11D: 2*128 = 0x100 -> reduced by 0x11D = 0x1D.
  EXPECT_EQ(GF256::mul(2, 128), 0x1D);
  EXPECT_EQ(GF256::mul(3, 7), 9);  // (x+1)(x^2+x+1) = x^3+1 -> 0b1001
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto e = static_cast<GF256::Elem>(a);
    EXPECT_EQ(GF256::mul(e, GF256::inv(e)), 1) << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  util::Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<GF256::Elem>(rng.below(256));
    const auto b = static_cast<GF256::Elem>(rng.between(1, 255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(Gf256, FieldAxiomsOnRandomSamples) {
  util::Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<GF256::Elem>(rng.below(256));
    const auto b = static_cast<GF256::Elem>(rng.below(256));
    const auto c = static_cast<GF256::Elem>(rng.below(256));
    // commutativity
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    // associativity
    EXPECT_EQ(GF256::mul(a, GF256::mul(b, c)),
              GF256::mul(GF256::mul(a, b), c));
    // distributivity
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(Gf256, AlphaGeneratesAllNonzeroElements) {
  std::set<GF256::Elem> seen;
  for (std::uint32_t i = 0; i < 255; ++i) {
    seen.insert(GF256::alpha_pow(i));
  }
  EXPECT_EQ(seen.size(), 255u);
  EXPECT_EQ(seen.count(0), 0u);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<GF256::Elem>(rng.between(1, 255));
    const auto e = static_cast<std::uint32_t>(rng.below(10));
    GF256::Elem expect = 1;
    for (std::uint32_t i = 0; i < e; ++i) {
      expect = GF256::mul(expect, a);
    }
    EXPECT_EQ(GF256::pow(a, e), expect);
  }
}

// -------------------------------------------------------- dispersal -----

class DispersalRoundTrip
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(DispersalRoundTrip, AnyBSharesRecoverTheBlock) {
  const auto [b, d] = GetParam();
  Disperser disperser({b, d});
  util::Rng rng(100 + b * 7 + d);
  std::vector<GF256::Elem> block(b);
  for (auto& e : block) {
    e = static_cast<GF256::Elem>(rng.below(256));
  }
  const auto shares = disperser.encode_bytes(block);
  ASSERT_EQ(shares.size(), d);

  // Try several random b-subsets of the d shares.
  for (int trial = 0; trial < 20; ++trial) {
    const auto pick = rng.sample_without_replacement(d, b);
    std::vector<std::uint32_t> indices;
    std::vector<GF256::Elem> values;
    for (const auto idx : pick) {
      indices.push_back(static_cast<std::uint32_t>(idx));
      values.push_back(shares[idx]);
    }
    const auto recovered = disperser.recover_bytes(indices, values);
    EXPECT_EQ(recovered, block) << "b=" << b << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, DispersalRoundTrip,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 4u),
                      std::make_pair(2u, 3u), std::make_pair(4u, 8u),
                      std::make_pair(8u, 16u), std::make_pair(16u, 24u),
                      std::make_pair(32u, 64u), std::make_pair(13u, 40u)));

TEST(Dispersal, SystematicPrefixNotRequired) {
  // The first b shares are P(alpha^0..alpha^(b-1)), not the raw block:
  // dispersal is non-systematic, so recovery must genuinely interpolate.
  Disperser disperser({4, 8});
  std::vector<GF256::Elem> block = {10, 20, 30, 40};
  const auto shares = disperser.encode_bytes(block);
  std::vector<GF256::Elem> prefix(shares.begin(), shares.begin() + 4);
  EXPECT_NE(prefix, block);
}

TEST(Dispersal, WordLanesIndependent) {
  Disperser disperser({4, 8});
  util::Rng rng(17);
  std::vector<Word> block(4);
  for (auto& w : block) {
    w = static_cast<Word>(rng.next());
  }
  const auto shares = disperser.encode_words(block);
  ASSERT_EQ(shares.size(), 8u);
  // Recover from shares {1, 3, 4, 6}.
  const std::vector<std::uint32_t> indices = {1, 3, 4, 6};
  const std::vector<Word> vals = {shares[1], shares[3], shares[4], shares[6]};
  EXPECT_EQ(disperser.recover_words(indices, vals), block);
}

TEST(Gf256, MulSpanAccumMatchesScalarMul) {
  util::Rng rng(77);
  for (const int ci : {0, 1, 2, 29, 255}) {
    const auto c = static_cast<GF256::Elem>(ci);
    std::vector<GF256::Elem> src(97), dst(97), expect(97);
    for (std::size_t i = 0; i < src.size(); ++i) {
      src[i] = static_cast<GF256::Elem>(rng.below(256));
      dst[i] = static_cast<GF256::Elem>(rng.below(256));
      expect[i] = GF256::add(dst[i], GF256::mul(c, src[i]));
    }
    GF256::mul_span_accum(dst.data(), src.data(), dst.size(), c);
    EXPECT_EQ(dst, expect) << "c=" << int{c};
  }
}

// The bulk region codec must be BIT-identical to the per-word paths it
// replaces: encode_regions against Horner encode_words block by block,
// decode_regions (identity AND arbitrary surviving-index sets) against
// Lagrange recover_words. This is the equivalence the width-1 storage
// rule leans on.
TEST(Dispersal, BulkRegionCodecMatchesPerWordCodec) {
  const std::uint32_t b = 4;
  const std::uint32_t d = 8;
  const std::uint32_t count = 6;  // blocks per region
  Disperser disperser({b, d});
  util::Rng rng(31);
  std::vector<pram::Word> blocks(static_cast<std::size_t>(count) * b);
  for (auto& w : blocks) {
    w = static_cast<pram::Word>(rng.next());
  }

  // Encode: share spans with stride > count to exercise strided layout.
  const std::size_t stride = count + 3;
  std::vector<pram::Word> shares(static_cast<std::size_t>(d) * stride, -1);
  disperser.encode_regions(blocks.data(), count, shares.data(), stride);
  for (std::uint32_t t = 0; t < count; ++t) {
    const std::vector<pram::Word> one(blocks.begin() + t * b,
                                      blocks.begin() + (t + 1) * b);
    const auto expect = disperser.encode_words(one);
    for (std::uint32_t s = 0; s < d; ++s) {
      ASSERT_EQ(shares[s * stride + t], expect[s]) << "t=" << t << " s=" << s;
    }
  }

  // Identity decode (the healthy serve path).
  std::vector<std::uint32_t> identity(b);
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<pram::Word> out(blocks.size(), 0);
  disperser.decode_regions(identity, shares.data(), stride, count,
                           out.data());
  EXPECT_EQ(out, blocks);

  // Arbitrary survivor sets (the degraded gather): position j's span
  // holds share indices[j]'s words.
  for (int trial = 0; trial < 10; ++trial) {
    const auto pick = rng.sample_without_replacement(d, b);
    std::vector<std::uint32_t> indices;
    std::vector<pram::Word> packed(static_cast<std::size_t>(b) * count);
    for (std::uint32_t j = 0; j < b; ++j) {
      indices.push_back(static_cast<std::uint32_t>(pick[j]));
      for (std::uint32_t t = 0; t < count; ++t) {
        packed[static_cast<std::size_t>(j) * count + t] =
            shares[pick[j] * stride + t];
      }
    }
    std::fill(out.begin(), out.end(), 0);
    disperser.decode_regions(indices, packed.data(), count, count,
                             out.data());
    ASSERT_EQ(out, blocks) << "trial " << trial;

    // And per-block agreement with the classic Lagrange path.
    std::vector<pram::Word> vals(b);
    for (std::uint32_t j = 0; j < b; ++j) {
      vals[j] = packed[static_cast<std::size_t>(j) * count];
    }
    const auto classic = disperser.recover_words(indices, vals);
    for (std::uint32_t j = 0; j < b; ++j) {
      ASSERT_EQ(out[j], classic[j]) << "trial " << trial;
    }
  }
}

TEST(Dispersal, StorageFactorIsDOverB) {
  EXPECT_DOUBLE_EQ(Disperser({4, 8}).storage_factor(), 2.0);
  EXPECT_DOUBLE_EQ(Disperser({10, 15}).storage_factor(), 1.5);
}

TEST(Dispersal, ToleratesMaximumErasures) {
  // Lose d-b shares (the worst case); the rest must still recover.
  const std::uint32_t b = 6;
  const std::uint32_t d = 14;
  Disperser disperser({b, d});
  util::Rng rng(23);
  std::vector<GF256::Elem> block(b);
  for (auto& e : block) {
    e = static_cast<GF256::Elem>(rng.below(256));
  }
  const auto shares = disperser.encode_bytes(block);
  // Keep only the LAST b shares (erase the first d-b).
  std::vector<std::uint32_t> indices(b);
  std::iota(indices.begin(), indices.end(), d - b);
  std::vector<GF256::Elem> values;
  for (const auto idx : indices) {
    values.push_back(shares[idx]);
  }
  EXPECT_EQ(disperser.recover_bytes(indices, values), block);
}

// -------------------------------------------------------- IdaMemory -----

IdaMemoryConfig small_config() {
  IdaMemoryConfig cfg;
  cfg.b = 4;
  cfg.d = 8;
  cfg.n_modules = 32;
  cfg.seed = 5;
  return cfg;
}

TEST(IdaMemory, ReadAfterWrite) {
  IdaMemory mem(64, small_config());
  const VarWrite writes[] = {{VarId(10), 777}};
  mem.step({}, {}, writes);
  const VarId reads[] = {VarId(10)};
  Word values[1];
  mem.step(reads, values, {});
  EXPECT_EQ(values[0], 777);
}

TEST(IdaMemory, ReadsSeePreStepState) {
  IdaMemory mem(64, small_config());
  mem.poke(VarId(3), 100);
  const VarId reads[] = {VarId(3)};
  Word values[1];
  const VarWrite writes[] = {{VarId(3), 200}};
  mem.step(reads, values, writes);
  EXPECT_EQ(values[0], 100);
  EXPECT_EQ(mem.peek(VarId(3)), 200);
}

TEST(IdaMemory, NeighborsInBlockUnaffectedByWrite) {
  IdaMemory mem(64, small_config());
  for (std::uint32_t v = 0; v < 8; ++v) {
    mem.poke(VarId(v), static_cast<Word>(v * 10));
  }
  const VarWrite writes[] = {{VarId(2), 999}};
  mem.step({}, {}, writes);
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_EQ(mem.peek(VarId(v)), v == 2 ? 999 : static_cast<Word>(v * 10));
  }
}

// Region-granular share storage is a pure layout change: the same
// operation stream against region_blocks = 1 (the classic
// one-row-per-block layout) and region_blocks = 4 must stay bit-exact —
// reads, final peeks, and cost — with and without per-share checksums.
TEST(IdaMemory, RegionStorageMatchesClassicLayout) {
  for (const bool check : {false, true}) {
    auto classic_cfg = small_config();
    classic_cfg.check_shares = check;
    auto region_cfg = classic_cfg;
    region_cfg.region_blocks = 4;
    IdaMemory classic(64, classic_cfg);
    IdaMemory region(64, region_cfg);
    EXPECT_EQ(region.region_blocks(), 4u);

    util::Rng rng(91);
    for (int s = 0; s < 30; ++s) {
      VarId reads[3] = {VarId(0), VarId(0), VarId(0)};
      Word got_classic[3] = {};
      Word got_region[3] = {};
      VarWrite writes[2];
      for (auto& r : reads) {
        r = VarId(static_cast<std::uint32_t>(rng.below(64)));
      }
      for (auto& w : writes) {
        w = {VarId(static_cast<std::uint32_t>(rng.below(64))),
             static_cast<Word>(rng.below(100000))};
      }
      if (writes[0].var == writes[1].var) {
        writes[1].var = VarId((writes[1].var.index() + 1) % 64);
      }
      const auto cost_classic = classic.step(reads, got_classic, writes);
      const auto cost_region = region.step(reads, got_region, writes);
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(got_classic[i], got_region[i]) << "step " << s;
      }
      EXPECT_EQ(cost_classic.time, cost_region.time) << "step " << s;
      EXPECT_EQ(cost_classic.work, cost_region.work) << "step " << s;
    }
    for (std::uint32_t v = 0; v < 64; ++v) {
      ASSERT_EQ(classic.peek(VarId(v)), region.peek(VarId(v)))
          << "check=" << check << " cell " << v;
    }
    EXPECT_DOUBLE_EQ(classic.work_amplification(),
                     region.work_amplification());
  }
}

TEST(IdaMemory, OracleConsistencyUnderRandomStream) {
  IdaMemory mem(256, small_config());
  std::map<std::uint32_t, Word> oracle;
  util::Rng rng(31);
  for (int step = 0; step < 150; ++step) {
    std::set<std::uint32_t> rset;
    std::set<std::uint32_t> wset;
    for (std::uint64_t i = 0, k = rng.below(10); i < k; ++i) {
      rset.insert(static_cast<std::uint32_t>(rng.below(256)));
    }
    for (std::uint64_t i = 0, k = rng.below(10); i < k; ++i) {
      wset.insert(static_cast<std::uint32_t>(rng.below(256)));
    }
    std::vector<VarId> reads(rset.begin(), rset.end());
    std::vector<VarWrite> writes;
    for (const auto v : wset) {
      writes.push_back({VarId(v), static_cast<Word>(rng.below(1 << 30))});
    }
    std::vector<Word> values(reads.size());
    mem.step(reads, values, writes);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const auto it = oracle.find(reads[i].value());
      ASSERT_EQ(values[i], it == oracle.end() ? 0 : it->second)
          << "step " << step;
    }
    for (const auto& w : writes) {
      oracle[w.var.value()] = w.value;
    }
  }
}

TEST(IdaMemory, WorkAmplificationIsThetaB) {
  // Reading k variables from distinct blocks processes k*b variables.
  IdaMemoryConfig cfg = small_config();
  IdaMemory mem(256, cfg);
  std::vector<VarId> reads;
  for (std::uint32_t blk = 0; blk < 16; ++blk) {
    reads.emplace_back(blk * cfg.b);  // one var per block
  }
  std::vector<Word> values(reads.size());
  const auto cost = mem.step(reads, values, {});
  EXPECT_EQ(cost.work, 16u * cfg.b);  // b shares fetched per block
  EXPECT_NEAR(mem.work_amplification(), cfg.b, 1e-9);
}

TEST(IdaMemory, WritesCostMoreThanReads) {
  IdaMemoryConfig cfg = small_config();
  IdaMemory mem_r(256, cfg);
  IdaMemory mem_w(256, cfg);
  std::vector<VarId> reads;
  std::vector<VarWrite> writes;
  for (std::uint32_t blk = 0; blk < 8; ++blk) {
    reads.emplace_back(blk * cfg.b);
    writes.push_back({VarId(blk * cfg.b), 5});
  }
  std::vector<Word> values(reads.size());
  const auto rc = mem_r.step(reads, values, {});
  const auto wc = mem_w.step({}, {}, writes);
  // A write is read-modify-write: b fetches + d updates per block.
  EXPECT_GT(wc.work, rc.work);
  EXPECT_EQ(wc.work, 8u * (cfg.b + cfg.d));
}

TEST(IdaMemory, TimeReflectsModuleContention) {
  // Hammering many variables in one block serializes on that block's
  // modules less than hammering across blocks on a tiny module count.
  IdaMemoryConfig cfg;
  cfg.b = 4;
  cfg.d = 8;
  cfg.n_modules = 8;  // tight: heavy contention
  cfg.seed = 9;
  IdaMemory mem(512, cfg);
  std::vector<VarId> reads;
  for (std::uint32_t blk = 0; blk < 64; ++blk) {
    reads.emplace_back(blk * cfg.b);
  }
  std::vector<Word> values(reads.size());
  const auto cost = mem.step(reads, values, {});
  // 64 blocks x 4 shares over 8 modules: >= 32 rounds.
  EXPECT_GE(cost.time, 32u);
}

}  // namespace
}  // namespace pramsim::ida
