// Tests for the majority-rule protocol: copy store semantics, the
// two-stage scheduler, MajorityMemory consistency (including against an
// oracle under random operation streams), and failure injection.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "majority/copy_store.hpp"
#include "majority/majority_memory.hpp"
#include "majority/scheduler.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

namespace pramsim::majority {
namespace {

using memmap::HashedMap;
using memmap::TableMap;
using pram::VarWrite;
using pram::Word;

// ------------------------------------------------------- copy store -----

TEST(CopyStore, FreshestPicksMaxStamp) {
  CopyStore store(4, 5);
  store.write(VarId(1), 0, 10, 3);
  store.write(VarId(1), 1, 20, 7);
  store.write(VarId(1), 2, 30, 5);
  const auto best = store.freshest(VarId(1), 0b111);
  EXPECT_EQ(best.value, 20);
  EXPECT_EQ(best.stamp, 7u);
  // Restricting the mask to copies {0,2} hides the stamp-7 copy.
  EXPECT_EQ(store.freshest(VarId(1), 0b101).value, 30);
}

TEST(CopyStore, GroundTruthSpansAllCopies) {
  CopyStore store(2, 3);
  store.write(VarId(0), 2, 99, 11);
  EXPECT_EQ(store.ground_truth(VarId(0)).value, 99);
}

TEST(CopyStore, CorruptKeepsStamp) {
  CopyStore store(2, 3);
  store.write(VarId(0), 0, 5, 2);
  store.corrupt(VarId(0), 0, 666);
  EXPECT_EQ(store.at(VarId(0), 0).value, 666);
  EXPECT_EQ(store.at(VarId(0), 0).stamp, 2u);
}

// ------------------------------------------- region-granular store -----

TEST(CopyStore, VoteRegionUnanimousDissentAndNoMajority) {
  CopyStore store(16, 5, 4);
  const std::uint64_t all = (1ULL << 5) - 1;
  // Region 1 = vars [4, 8). Write every copy of every var identically.
  for (std::uint32_t v = 4; v < 8; ++v) {
    for (std::uint32_t c = 0; c < 5; ++c) {
      store.write(VarId(v), c, 100 + v, 7);
    }
  }
  std::uint32_t dissenting = 99;
  EXPECT_EQ(store.vote_region(1, all, &dissenting), 0);
  EXPECT_EQ(dissenting, 0u);
  // Early-exit flavor (no dissent pointer) agrees on the winner.
  EXPECT_EQ(store.vote_region(1, all), 0);

  // One copy dissents mid-region: still a 4-of-5 bytewise majority, and
  // the dissent count is exact.
  store.corrupt(VarId(6), 2, 31337);
  EXPECT_EQ(store.vote_region(1, all, &dissenting), 0);
  EXPECT_EQ(dissenting, 1u);
  // Masking the dissenter out restores unanimity among the live copies.
  EXPECT_EQ(store.vote_region(1, all & ~(1ULL << 2), &dissenting), 0);
  EXPECT_EQ(dissenting, 0u);
  // Masking copy 0 out instead shifts the winner to the lowest live copy.
  EXPECT_EQ(store.vote_region(1, all & ~1ULL, &dissenting), 1);
  EXPECT_EQ(dissenting, 1u);

  // Three of five copies each diverge to a distinct value: the two
  // agreeing survivors are below the strict majority of 3, so no copy's
  // whole region wins and callers must fall back to per-word vote().
  store.corrupt(VarId(5), 0, 1111);
  store.corrupt(VarId(7), 1, 2222);
  EXPECT_EQ(store.vote_region(1, all, &dissenting),
            CopyStore::kNoRegionMajority);
  // No survivors at all is also no-majority, never a {0,0} winner.
  EXPECT_EQ(store.vote_region(1, 0), CopyStore::kNoRegionMajority);
}

TEST(CopyStore, VoteRegionUntouchedRegionIsUnanimousZero) {
  CopyStore store(16, 5, 4);
  std::uint32_t dissenting = 99;
  // Lowest live copy represents the all-{0,0} region; nothing allocates.
  EXPECT_EQ(store.vote_region(2, 0b11100, &dissenting), 2);
  EXPECT_EQ(dissenting, 0u);
  EXPECT_EQ(store.touched_vars(), 0u);
}

TEST(CopyStore, CopyRegionRepairsWholeSlice) {
  CopyStore store(16, 3, 4);
  for (std::uint32_t v = 8; v < 12; ++v) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      store.write(VarId(v), c, 500 + v, 9);
    }
  }
  store.corrupt(VarId(9), 2, 777);
  store.corrupt(VarId(11), 2, 888);
  const std::int32_t winner = store.vote_region(2, 0b111);
  ASSERT_EQ(winner, 0);
  store.copy_region(2, static_cast<std::uint32_t>(winner), 2);
  std::uint32_t dissenting = 99;
  EXPECT_EQ(store.vote_region(2, 0b111, &dissenting), 0);
  EXPECT_EQ(dissenting, 0u);
  EXPECT_EQ(store.at(VarId(9), 2).value, 509u);
  EXPECT_EQ(store.at(VarId(11), 2).stamp, 9u);
}

TEST(CopyStore, WidthOneAndWidthFourAgreeOnEveryQuery) {
  // Same write stream into a classic width-1 store and a width-4 store:
  // every per-word query (at / freshest / ground_truth / touched) must
  // agree — region granularity is storage layout, not semantics.
  CopyStore narrow(32, 3, 1);
  CopyStore wide(32, 3, 4);
  EXPECT_EQ(wide.num_regions(), 8u);
  util::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const VarId var(static_cast<std::uint32_t>(rng.below(32)));
    const auto copy = static_cast<std::uint32_t>(rng.below(3));
    const auto value = static_cast<Word>(rng.below(1000));
    const std::uint64_t stamp = 1 + static_cast<std::uint64_t>(i) / 4;
    narrow.write(var, copy, value, stamp);
    wide.write(var, copy, value, stamp);
  }
  for (std::uint32_t v = 0; v < 32; ++v) {
    const VarId var(v);
    for (std::uint32_t c = 0; c < 3; ++c) {
      ASSERT_EQ(narrow.at(var, c).value, wide.at(var, c).value) << v;
      ASSERT_EQ(narrow.at(var, c).stamp, wide.at(var, c).stamp) << v;
    }
    EXPECT_EQ(narrow.freshest(var, 0b101).value,
              wide.freshest(var, 0b101).value);
    EXPECT_EQ(narrow.ground_truth(var).value, wide.ground_truth(var).value);
    EXPECT_EQ(narrow.ground_truth(var).stamp, wide.ground_truth(var).stamp);
  }
}

// -------------------------------------------------------- scheduler -----

SchedulerConfig config_for(std::uint32_t c, std::uint32_t n) {
  SchedulerConfig cfg;
  cfg.c = c;
  cfg.cluster_size = 2 * c - 1;
  cfg.n_processors = n;
  return cfg;
}

std::vector<VarRequest> distinct_requests(std::uint32_t count,
                                          std::uint64_t m, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto vars = rng.sample_without_replacement(m, count);
  std::vector<VarRequest> reqs;
  reqs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  return reqs;
}

TEST(Scheduler, EveryRequestReachesThreshold) {
  const auto params = memmap::derive_params(64, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  const auto reqs = distinct_requests(64, params.m, 7);
  const auto result = schedule_step(map, reqs, config_for(params.c, 64));
  ASSERT_EQ(result.accessed_mask.size(), 64u);
  for (const auto mask : result.accessed_mask) {
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
              params.c);
  }
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GE(result.total_copy_accesses,
            static_cast<std::uint64_t>(params.c) * 64);
}

TEST(Scheduler, EmptyBatchIsFree) {
  const auto params = memmap::derive_params(64, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  const auto result =
      schedule_step(map, {}, config_for(params.c, 64));
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.total_copy_accesses, 0u);
}

TEST(Scheduler, SingleRequestTakesCRoundsWorstCaseOne) {
  // One variable, r copies in distinct modules: every round all unaccessed
  // copies are probed, each module serves its probe, so c accesses land in
  // round one.
  const auto params = memmap::derive_params(64, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  const std::vector<VarRequest> reqs = {{VarId(3), ProcId(0)}};
  const auto result = schedule_step(map, reqs, config_for(params.c, 64));
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_GE(result.total_copy_accesses, params.c);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  const auto params = memmap::derive_params(128, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  const auto reqs = distinct_requests(128, params.m, 11);
  const auto a = schedule_step(map, reqs, config_for(params.c, 128));
  const auto b = schedule_step(map, reqs, config_for(params.c, 128));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.accessed_mask, b.accessed_mask);
  EXPECT_EQ(a.total_copy_accesses, b.total_copy_accesses);
}

TEST(Scheduler, AllAtOnceNeverSlower) {
  const auto params = memmap::derive_params(128, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  const auto reqs = distinct_requests(128, params.m, 13);
  auto cfg = config_for(params.c, 128);
  const auto clustered = schedule_step(map, reqs, cfg);
  cfg.all_at_once = true;
  const auto flat = schedule_step(map, reqs, cfg);
  EXPECT_LE(flat.rounds, clustered.rounds);
  for (const auto mask : flat.accessed_mask) {
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
              params.c);
  }
}

TEST(Scheduler, Stage1LeavesBoundedLiveSet) {
  // The LPP stage-1 guarantee: at most n / (2c-1) live variables remain.
  // Our stage-1 length is stage1_turns * (2c-1) phases; verify the bound
  // holds empirically across seeds.
  const auto params = memmap::derive_params(256, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 5);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto reqs = distinct_requests(256, params.m, seed);
    const auto result = schedule_step(map, reqs, config_for(params.c, 256));
    EXPECT_LE(result.live_after_stage1, 256u / params.r + 1)
        << "seed " << seed;
  }
}

TEST(Scheduler, HotModuleMapStillCompletes) {
  // Adversarially terrible map: tiny module count forces serialization but
  // the protocol must still terminate with every request satisfied.
  TableMap map(64, /*modules=*/5, /*r=*/5, 3);
  std::vector<VarRequest> reqs;
  for (std::uint32_t i = 0; i < 32; ++i) {
    reqs.push_back({VarId(i), ProcId(i)});
  }
  SchedulerConfig cfg;
  cfg.c = 3;
  cfg.cluster_size = 5;
  cfg.n_processors = 32;
  const auto result = schedule_step(map, reqs, cfg);
  for (const auto mask : result.accessed_mask) {
    EXPECT_GE(__builtin_popcountll(mask), 3);
  }
  // 32 requests x 3 accesses through 5 unit-bandwidth modules needs at
  // least ceil(96/5) rounds.
  EXPECT_GE(result.rounds, 96u / 5u);
}

TEST(Scheduler, RoundsGrowSublinearlyInN) {
  // Theorem 2 in miniature: rounds should scale ~log n, certainly far
  // sublinearly.
  const double b = 4.0;
  std::vector<double> rounds;
  for (const std::uint32_t n : {64u, 256u, 1024u}) {
    const auto params = memmap::derive_params(n, 2.0, 1.0, b);
    HashedMap map(params.m, params.n_modules, params.r, 5);
    const auto reqs = distinct_requests(n, params.m, 17);
    const auto result = schedule_step(map, reqs, config_for(params.c, n));
    rounds.push_back(static_cast<double>(result.rounds));
  }
  EXPECT_LT(rounds[2], rounds[0] * 16.0);  // 16x n -> far less than 16x time
}

// -------------------------------------------------- majority memory -----

std::unique_ptr<MajorityMemory> make_memory(std::uint32_t n, double eps,
                                            std::uint64_t seed) {
  const auto params = memmap::derive_params(n, 2.0, eps, 4.0);
  auto map = std::make_shared<HashedMap>(params.m, params.n_modules, params.r,
                                         seed);
  SchedulerConfig cfg;
  cfg.c = params.c;
  cfg.cluster_size = params.cluster;
  cfg.n_processors = n;
  return std::make_unique<MajorityMemory>(std::move(map), cfg);
}

TEST(MajorityMemory, ReadYourWrite) {
  auto mem = make_memory(64, 1.0, 3);
  const VarWrite writes[] = {{VarId(7), 1234}};
  mem->step({}, {}, writes);
  const VarId reads[] = {VarId(7)};
  Word values[1];
  mem->step(reads, values, {});
  EXPECT_EQ(values[0], 1234);
}

TEST(MajorityMemory, ReadsSeePreStepValues) {
  auto mem = make_memory(64, 1.0, 3);
  mem->poke(VarId(5), 100);
  const VarId reads[] = {VarId(5)};
  Word values[1];
  const VarWrite writes[] = {{VarId(5), 200}};
  mem->step(reads, values, writes);
  EXPECT_EQ(values[0], 100);
  EXPECT_EQ(mem->peek(VarId(5)), 200);
}

TEST(MajorityMemory, OracleConsistencyUnderRandomStream) {
  // Property test: 200 steps of random reads/writes must match a flat
  // reference memory exactly.
  auto mem = make_memory(64, 1.0, 9);
  const std::uint64_t m = mem->size();
  std::map<std::uint32_t, Word> oracle;
  util::Rng rng(21);
  for (int step = 0; step < 200; ++step) {
    // Build distinct read and write sets (a var may appear in both).
    std::set<std::uint32_t> rset;
    std::set<std::uint32_t> wset;
    const auto n_reads = rng.below(16);
    const auto n_writes = rng.below(16);
    for (std::uint64_t i = 0; i < n_reads; ++i) {
      rset.insert(static_cast<std::uint32_t>(rng.below(m)));
    }
    for (std::uint64_t i = 0; i < n_writes; ++i) {
      wset.insert(static_cast<std::uint32_t>(rng.below(m)));
    }
    std::vector<VarId> reads(rset.begin(), rset.end());
    std::vector<VarWrite> writes;
    for (const auto v : wset) {
      writes.push_back({VarId(v), static_cast<Word>(rng.below(1'000'000))});
    }
    std::vector<Word> values(reads.size());
    mem->step(reads, values, writes);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const auto it = oracle.find(reads[i].value());
      const Word expected = it == oracle.end() ? 0 : it->second;
      ASSERT_EQ(values[i], expected)
          << "step " << step << " var " << reads[i].value();
    }
    for (const auto& w : writes) {
      oracle[w.var.value()] = w.value;
    }
  }
}

TEST(MajorityMemory, ToleratesStaleMinorityCorruption) {
  // Fault model the majority rule tolerates: copies that the last write
  // did NOT update (their stamps are stale) may hold arbitrary garbage.
  // Reads access >= c copies, which must intersect the >= c
  // freshly-stamped ones, and the freshest stamp wins — so corrupted
  // stale values can never surface.
  auto mem = make_memory(64, 1.0, 13);
  const auto r = mem->map().redundancy();
  const VarWrite writes[] = {{VarId(3), 4242}};
  mem->step({}, {}, writes);
  const auto& store = mem->store();
  std::uint64_t max_stamp = 0;
  for (std::uint32_t copy = 0; copy < r; ++copy) {
    max_stamp = std::max(max_stamp, store.at(VarId(3), copy).stamp);
  }
  int corrupted = 0;
  for (std::uint32_t copy = 0; copy < r; ++copy) {
    if (store.at(VarId(3), copy).stamp < max_stamp) {
      mem->mutable_store().corrupt(VarId(3), copy, -999);
      ++corrupted;
    }
  }
  // The write updated >= c of 2c-1 copies, so at most c-1 were stale.
  EXPECT_LE(corrupted, static_cast<int>((r + 1) / 2) - 1);
  const VarId reads[] = {VarId(3)};
  Word values[1];
  mem->step(reads, values, {});
  EXPECT_EQ(values[0], 4242);
}

TEST(MajorityMemory, MajorityIntersectionHoldsByConstruction) {
  // Structural check of the 2c-1 invariant: any two c-subsets intersect.
  for (std::uint32_t c = 1; c <= 8; ++c) {
    const std::uint32_t r = 2 * c - 1;
    // The heaviest c-subset and lightest c-subset must share an index.
    std::set<std::uint32_t> low;
    std::set<std::uint32_t> high;
    for (std::uint32_t i = 0; i < c; ++i) {
      low.insert(i);
      high.insert(r - 1 - i);
    }
    std::vector<std::uint32_t> intersection;
    std::set_intersection(low.begin(), low.end(), high.begin(), high.end(),
                          std::back_inserter(intersection));
    EXPECT_FALSE(intersection.empty()) << "c=" << c;
  }
}

TEST(MajorityMemory, CostReflectsContention) {
  auto mem = make_memory(64, 1.0, 15);
  // A batch of 64 distinct vars costs more rounds than a single var.
  util::Rng rng(5);
  const auto vars = rng.sample_without_replacement(mem->size(), 64);
  std::vector<VarId> reads;
  reads.reserve(64);
  for (const auto v : vars) {
    reads.emplace_back(static_cast<std::uint32_t>(v));
  }
  std::vector<Word> values(64);
  const auto big = mem->step(reads, values, {});
  const VarId one[] = {VarId(0)};
  Word val[1];
  const auto small = mem->step(one, val, {});
  EXPECT_GT(big.time, small.time);
  EXPECT_GT(big.work, small.work);
}

// -------------------------------------------- end-to-end with P-RAM -----

TEST(MajorityMemory, RunsPrefixSumIdenticallyToIdealPram) {
  // The integration the paper is about: a real P-RAM program executing on
  // the replicated memory must produce the exact ideal result.
  const std::uint32_t n = 32;
  auto spec = pram::programs::prefix_sum(n);
  auto spec2 = pram::programs::prefix_sum(n);

  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = spec.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;

  // Ideal machine.
  pram::Machine ideal(cfg, std::move(spec.program));
  // Simulated machine: majority memory sized to the program footprint.
  const auto params = memmap::derive_params(n, 2.0, 1.0, 4.0);
  auto map = std::make_shared<HashedMap>(
      std::max<std::uint64_t>(params.m, spec2.m_required), params.n_modules,
      params.r, 33);
  SchedulerConfig scfg;
  scfg.c = params.c;
  scfg.cluster_size = params.cluster;
  scfg.n_processors = n;
  pram::Machine simulated(cfg, std::move(spec2.program),
                          std::make_unique<MajorityMemory>(map, scfg));

  util::Rng rng(77);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<Word>(rng.below(1000));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  const auto out_ideal = ideal.run();
  const auto out_sim = simulated.run();
  ASSERT_TRUE(out_ideal.completed());
  ASSERT_TRUE(out_sim.completed());
  EXPECT_EQ(out_ideal.steps, out_sim.steps);
  // The simulated machine pays >1 round for contended steps.
  EXPECT_GE(out_sim.mem_time, out_ideal.mem_time);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i))) << i;
  }
}

}  // namespace
}  // namespace pramsim::majority
