// Cross-cutting property tests (parameterized sweeps):
//  * Lemma 2 expansion holds across many independent map seeds — the
//    "almost every random map is good" content of the union bound;
//  * tree routing pipelines (k same-path requests cost path + O(k), not
//    k * path) — the LPP latency-hiding fact Theorem 3's stage 2 uses;
//  * protocol invariants under seed sweeps: completion, >= c accesses,
//    mask subset-of-copies, determinism;
//  * majority memory linearizability under longer mixed workloads on the
//    2DMOT engine (not just the DMMPC one).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "network/paths.hpp"
#include "network/router.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

// ------------------------- Lemma 2 across seeds -------------------------

class MapSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapSeedSweep, ExpansionPropertyHolds) {
  const auto seed = GetParam();
  const auto params = memmap::derive_params(512, 2.0, 1.0, 4.0);
  memmap::HashedMap map(params.m, params.n_modules, params.r, seed);
  const std::uint64_t q = params.n / params.r;
  const auto res = memmap::measure_expansion(map, params.c, q, 15, seed + 1);
  EXPECT_GE(res.ratio_vs_bound(params.b), 1.0)
      << "seed " << seed << ": a bad map (union bound says this should be "
      << "exponentially unlikely)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

// ------------------------------- pipelining -----------------------------

TEST(Pipelining, SameColumnRequestsOverlapLatency) {
  // k packets from k different rows into the SAME column and module:
  // store-and-forward tree routing pipelines them, so total time is
  // ~ path + k (port serialization), far below k * path.
  const std::uint32_t S = 64;
  const std::uint32_t k = 32;
  std::vector<net::Packet> packets(k);
  std::size_t path_len = 0;
  for (std::uint32_t p = 0; p < k; ++p) {
    packets[p].id = p;
    packets[p].path = net::hp_request_path(S, p, 7, 3);
    path_len = packets[p].path.size();
  }
  const auto report = net::route_all(packets);
  EXPECT_EQ(report.delivered, k);
  std::uint64_t last = 0;
  for (const auto& packet : packets) {
    last = std::max(last, packet.delivered_at);
  }
  // Pipelined bound: path + (k-1) port services + tree merge slack.
  EXPECT_LE(last, path_len + 2 * k);
  // Non-pipelined would be >= k * (path/2); assert we are far below.
  EXPECT_LT(last, static_cast<std::uint64_t>(k) * path_len / 2);
}

TEST(Pipelining, StagedInjectionMatchesLppPhaseAccounting) {
  // The LPP stage-2 remark: "O(log n) requests satisfied per phase to
  // match the O(log n) latency". With k = log S requests queued on one
  // column, one phase of ~2 round trips suffices for all of them.
  const std::uint32_t S = 64;
  const std::uint32_t k = 6;  // log2 S
  std::vector<net::Packet> packets(k);
  for (std::uint32_t p = 0; p < k; ++p) {
    packets[p].id = p;
    packets[p].path = net::hp_request_path(S, p, 9, 11);
  }
  const auto rt = 2 * packets[0].path.size() - 1;
  const auto report = net::route_all(packets);
  EXPECT_EQ(report.delivered, k);
  EXPECT_LE(report.cycles, 2 * rt);
}

// --------------------------- protocol invariants ------------------------

class EngineSeedSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EngineSeedSweep, InvariantsHold) {
  const auto [kind_idx, seed] = GetParam();
  const auto kind = static_cast<core::SchemeKind>(kind_idx);
  const std::uint32_t n = 32;
  auto inst = core::make_scheme({.kind = kind, .n = n, .seed = seed});
  util::Rng rng(seed * 7 + 1);
  const auto vars = rng.sample_without_replacement(inst.m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  const auto result = inst.engine->run_step(reqs);
  ASSERT_EQ(result.accessed_mask.size(), reqs.size());
  std::vector<ModuleId> copies(inst.r);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto mask = result.accessed_mask[i];
    // >= c copies accessed...
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
              inst.c);
    // ...and only bits < r can be set.
    EXPECT_EQ(mask >> inst.r, 0u);
  }
  // Work is at least c per request and bounded by r per request.
  EXPECT_GE(result.work, static_cast<std::uint64_t>(inst.c) * reqs.size());
  EXPECT_LE(result.work, static_cast<std::uint64_t>(inst.r) * reqs.size());
  // Determinism.
  const auto again = inst.engine->run_step(reqs);
  EXPECT_EQ(again.time, result.time);
  EXPECT_EQ(again.accessed_mask, result.accessed_mask);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, EngineSeedSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(core::SchemeKind::kHpMot),
                          static_cast<int>(core::SchemeKind::kDmmpc),
                          static_cast<int>(core::SchemeKind::kLppMot)),
        ::testing::Values(1u, 7u, 42u, 1000u)));

// ------------------ linearizability on the network engine ---------------

TEST(MotLinearizability, LongMixedWorkloadMatchesOracle) {
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kHpMot, .n = 16, .seed = 5});
  const std::uint64_t m = memory->size();
  std::map<std::uint32_t, pram::Word> oracle;
  util::Rng rng(99);
  for (int step = 0; step < 60; ++step) {
    std::set<std::uint32_t> rset;
    std::set<std::uint32_t> wset;
    for (std::uint64_t i = 0, k = rng.below(8); i < k; ++i) {
      rset.insert(static_cast<std::uint32_t>(rng.below(m)));
    }
    for (std::uint64_t i = 0, k = rng.below(8); i < k; ++i) {
      wset.insert(static_cast<std::uint32_t>(rng.below(m)));
    }
    std::vector<VarId> reads(rset.begin(), rset.end());
    std::vector<pram::VarWrite> writes;
    for (const auto v : wset) {
      writes.push_back({VarId(v), static_cast<pram::Word>(rng.below(1 << 20))});
    }
    std::vector<pram::Word> values(reads.size());
    memory->step(reads, values, writes);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const auto it = oracle.find(reads[i].value());
      ASSERT_EQ(values[i], it == oracle.end() ? 0 : it->second)
          << "step " << step;
    }
    for (const auto& w : writes) {
      oracle[w.var.value()] = w.value;
    }
  }
}

// ------------------------------ trace driver ----------------------------

TEST(DriverProperty, StressIsDeterministicGivenSeed) {
  core::SimulationPipeline a({.kind = core::SchemeKind::kDmmpc, .n = 64});
  core::SimulationPipeline b({.kind = core::SchemeKind::kDmmpc, .n = 64});
  const auto ra = a.run_stress({.steps_per_family = 3, .seed = 777});
  const auto rb = b.run_stress({.steps_per_family = 3, .seed = 777});
  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_DOUBLE_EQ(ra.time.mean(), rb.time.mean());
  EXPECT_DOUBLE_EQ(ra.work.mean(), rb.work.mean());
}

TEST(DriverProperty, EverySchemeKindRunsTheStressPipeline) {
  for (const auto kind : core::all_scheme_kinds()) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 3});
    const auto result =
        pipeline.run_stress({.steps_per_family = 1, .seed = 11});
    EXPECT_GE(result.steps, 3u) << core::to_string(kind);
    EXPECT_GT(result.time.mean(), 0.0) << core::to_string(kind);
    EXPECT_GE(result.storage_factor, 1.0) << core::to_string(kind);
  }
}

}  // namespace
}  // namespace pramsim
