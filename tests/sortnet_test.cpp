// Tests for the Batcher comparator network and the Alt-BDN baseline
// engine built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/alt_engine.hpp"
#include "core/schemes.hpp"
#include "sortnet/batcher.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::sortnet {
namespace {

TEST(Batcher, DepthIsLogSquaredShape) {
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    const auto net = batcher_sort(n);
    const auto logn = static_cast<std::size_t>(util::ilog2_floor(n));
    EXPECT_EQ(net.depth(), logn * (logn + 1) / 2) << "n=" << n;
    EXPECT_EQ(net.lines(), n);
  }
}

TEST(Batcher, SizeIsNLogSquaredShape) {
  // Batcher's network has Theta(n log^2 n) comparators.
  const auto net = batcher_sort(256);
  const double n = 256.0;
  const double logn = 8.0;
  const double comparators = static_cast<double>(net.size());
  EXPECT_GT(comparators, 0.2 * n * logn * logn / 4.0);
  EXPECT_LT(comparators, n * logn * logn);
}

class BatcherZeroOne : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatcherZeroOne, SortsAllZeroOneInputs) {
  // The 0-1 principle: a comparator network sorts every input iff it
  // sorts every 0-1 input. Exhaustive up to n = 16 (65536 cases).
  const std::uint32_t n = GetParam();
  const auto net = batcher_sort(n);
  for (std::uint32_t pattern = 0; pattern < (1U << n); ++pattern) {
    std::vector<int> values(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      values[i] = (pattern >> i) & 1U;
    }
    net.apply(std::span<int>(values));
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      ASSERT_LE(values[i], values[i + 1])
          << "n=" << n << " pattern=" << pattern;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatcherZeroOne,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Batcher, SortsRandomWordInputs) {
  util::Rng rng(5);
  for (const std::uint32_t n : {32u, 128u, 1024u}) {
    const auto net = batcher_sort(n);
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) {
      v = rng.next();
    }
    auto expected = values;
    std::sort(expected.begin(), expected.end());
    net.apply(std::span<std::uint64_t>(values));
    EXPECT_EQ(values, expected) << "n=" << n;
  }
}

TEST(Batcher, LayersAreLineDisjoint) {
  const auto net = batcher_sort(64);
  for (const auto& layer : net.layers()) {
    std::vector<bool> used(64, false);
    for (const auto& comp : layer) {
      ASSERT_LT(comp.lo, comp.hi);
      ASSERT_FALSE(used[comp.lo]);
      ASSERT_FALSE(used[comp.hi]);
      used[comp.lo] = true;
      used[comp.hi] = true;
    }
  }
}

TEST(AltBdn, FactoryProducesLogRedundancySortingScheme) {
  const auto inst =
      core::make_scheme({.kind = core::SchemeKind::kAltBdn, .n = 256});
  EXPECT_EQ(inst.n_modules, 256u);
  EXPECT_GT(inst.r, 7u);  // Theta(log m)
  // cycles/round = batcher depth (8*9/2 = 36) + 2 log n (16).
  EXPECT_EQ(inst.request_hops, 36u + 16u);
}

TEST(AltBdn, StepCompletesAndCostsDepthPerRound) {
  auto inst = core::make_scheme({.kind = core::SchemeKind::kAltBdn, .n = 64});
  util::Rng rng(3);
  const auto vars = rng.sample_without_replacement(inst.m, 64);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < 64; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  const auto result = inst.engine->run_step(reqs);
  for (const auto mask : result.accessed_mask) {
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
              inst.c);
  }
  const auto* engine =
      dynamic_cast<const core::AltBdnEngine*>(inst.engine);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(result.time % engine->cycles_per_round(), 0u);
  EXPECT_GE(result.time / engine->cycles_per_round(), 1u);
}

TEST(AltBdn, SlowerThanHpMotAtSameN) {
  // The paper's positioning: the sorting-network baseline pays
  // Theta(log n log m) per step, which at these sizes exceeds the
  // HP-2DMOT's measured cycles.
  const std::uint32_t n = 128;
  auto alt = core::make_scheme({.kind = core::SchemeKind::kAltBdn, .n = n});
  auto hp = core::make_scheme({.kind = core::SchemeKind::kHpMot, .n = n});
  util::Rng rng(7);
  const auto vars = rng.sample_without_replacement(hp.m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  const auto t_alt = alt.engine->run_step(reqs).time;
  const auto t_hp = hp.engine->run_step(reqs).time;
  EXPECT_GT(t_alt, t_hp);
}

}  // namespace
}  // namespace pramsim::sortnet
