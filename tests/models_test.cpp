// Tests for the machine-model descriptors and VLSI area accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "models/machine_models.hpp"
#include "models/vlsi.hpp"

namespace pramsim::models {
namespace {

// ---------------------------------------------------- machine models ----

TEST(MachineModels, FigureOrderAndNames) {
  const auto all = describe_all(64, 4096, 4096);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_STREQ(to_string(all[0].model), "P-RAM");
  EXPECT_STREQ(to_string(all[1].model), "MPC");
  EXPECT_STREQ(to_string(all[2].model), "BDN");
  EXPECT_STREQ(to_string(all[3].model), "DMMPC");
  EXPECT_STREQ(to_string(all[4].model), "DMBDN");
}

TEST(MachineModels, OnlyBdnAndDmbdnAreBoundedDegree) {
  const auto all = describe_all(64, 4096, 4096);
  EXPECT_FALSE(all[0].bounded_degree);  // P-RAM
  EXPECT_FALSE(all[1].bounded_degree);  // MPC: K_n
  EXPECT_TRUE(all[2].bounded_degree);   // BDN
  EXPECT_FALSE(all[3].bounded_degree);  // DMMPC: K_{n,M}
  EXPECT_TRUE(all[4].bounded_degree);   // DMBDN
}

TEST(MachineModels, GranularityDiffersBetweenMpcAndDmmpc) {
  const std::uint64_t n = 256;
  const std::uint64_t m = n * n;
  const auto mpc = describe(MachineModel::kMpc, n, m);
  const auto dmmpc = describe(MachineModel::kDmmpc, n, m, /*M=*/m);
  // MPC: coarse modules of m/n cells; DMMPC at M=m: single-cell granules.
  EXPECT_DOUBLE_EQ(mpc.module_cells, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(dmmpc.module_cells, 1.0);
  EXPECT_GT(dmmpc.memory_modules, mpc.memory_modules);
}

TEST(MachineModels, EdgeCountsMatchDefinitions) {
  const auto mpc = describe(MachineModel::kMpc, 10, 100);
  EXPECT_EQ(mpc.interconnect_edges, 45u);  // K_10
  const auto dmmpc = describe(MachineModel::kDmmpc, 10, 100, 30);
  EXPECT_EQ(dmmpc.interconnect_edges, 300u);  // K_{10,30}
  const auto bdn = describe(MachineModel::kBdn, 10, 100, 0, 4);
  EXPECT_EQ(bdn.interconnect_edges, 20u);  // degree 4
}

TEST(MachineModels, DmbdnIntroducesSwitchesOthersDoNot) {
  const auto all = describe_all(64, 4096, 1024);
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_EQ(all[i].switches, 0u) << to_string(all[i].model);
  }
  EXPECT_GT(all[4].switches, 0u);
  EXPECT_LE(all[4].switches, 2u * 1024u);  // O(M)
}

// --------------------------------------------------------------- VLSI ---

TEST(Vlsi, MotLayoutAreaMatchesLeightonShape) {
  // area(N) / N^2 should grow like log^2 N for unit leaves.
  double prev_ratio = 0.0;
  for (const std::uint64_t side : {16u, 64u, 256u, 1024u}) {
    const double area = mot_layout_area(side, 1.0);
    const double n2 = static_cast<double>(side) * static_cast<double>(side);
    const double ratio = area / n2;
    EXPECT_GT(ratio, prev_ratio);  // superlinear in N^2
    prev_ratio = ratio;
    const double logn = std::log2(static_cast<double>(side));
    // ratio ~ (1 + log N)^2: within a factor 4 of log^2 N.
    EXPECT_LT(ratio, 4.0 * (1.0 + logn) * (1.0 + logn));
  }
}

TEST(Vlsi, BigLeavesDominateSmallNetworks) {
  // With leaf area >> log^2 N the leaves dominate: area ~ N^2 * A_leaf.
  const double area = mot_layout_area(16, 10'000.0);
  EXPECT_NEAR(area / (16.0 * 16.0 * 10'000.0), 1.0, 0.25);
}

TEST(Vlsi, ModuleAreaHasDecoderOverhead) {
  const double tiny = module_area(1.0, 1024);
  const double big = module_area(1024.0, 1024);
  // Decoder overhead is visible for tiny granules...
  EXPECT_GT(tiny, 64.0);  // > pure cell area of one 64-bit word
  // ...but amortized away for large ones.
  EXPECT_LT(big / (1024.0 * 64.0), 1.01);
}

TEST(Vlsi, MemoryAreaOverheadConstantOnceGranuleBigEnough) {
  // The paper: with g = Omega(log^2 n), simulator memory area is Theta(m).
  const std::uint32_t r = 7;
  const std::uint64_t n = 1024;
  const std::uint64_t m = n * n;
  // g = r*m/M; choose M so g ~ log^2 n = 100: M = r*m/100.
  const std::uint64_t M_coarse = r * m / 128;
  const double overhead_ok = memory_area_overhead(m, r, M_coarse);
  // r copies of every variable => at least r times the P-RAM's area, but
  // not much more than that once the granule amortizes the decoders.
  EXPECT_GE(overhead_ok, static_cast<double>(r) * 0.9);
  EXPECT_LE(overhead_ok, static_cast<double>(r) * 3.0);
}

TEST(Vlsi, SingleCellGranulesWasteArea) {
  // g = r (M = m): per-module decoder overhead is paid m times, so the
  // overhead factor visibly exceeds the g = log^2 n configuration.
  const std::uint32_t r = 7;
  const std::uint64_t n = 1024;
  const std::uint64_t m = n * n;
  const double fine = memory_area_overhead(m, r, /*M=*/m);
  const double coarse = memory_area_overhead(m, r, /*M=*/r * m / 128);
  EXPECT_GT(fine, coarse);
}

TEST(Vlsi, PerimeterBandwidthIsSqrtM) {
  EXPECT_DOUBLE_EQ(perimeter_bandwidth(1024), 4.0 * 32.0);
  EXPECT_DOUBLE_EQ(perimeter_bandwidth(65536), 4.0 * 256.0);
}

}  // namespace
}  // namespace pramsim::models
