// Tests for the P-ROM address-translation feature (paper conclusion).
#include <gtest/gtest.h>

#include <set>

#include "core/driver.hpp"
#include "core/mot_engine.hpp"
#include "core/prom.hpp"
#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

namespace pramsim::core {
namespace {

TEST(Prom, StorageAccounting) {
  // n=64, m=4096, r=7, M=4096: entry = 7*(12+1) = 91 bits.
  const auto bits = map_table_bits(64, 4096, 7, 4096);
  EXPECT_EQ(bits.per_processor, 4096u * 91u);
  EXPECT_EQ(bits.local_total, 64u * 4096u * 91u);
  EXPECT_EQ(bits.prom_total, bits.per_processor);
  EXPECT_DOUBLE_EQ(bits.reduction_factor, 64.0);
}

TEST(Prom, HomeModulesAreUniformish) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t v = 0; v < 4096; ++v) {
    const auto home = prom_home_module(VarId(v), 256);
    ASSERT_LT(home.value(), 256u);
    seen.insert(home.value());
  }
  EXPECT_GT(seen.size(), 250u);  // nearly all modules host entries
}

TEST(Prom, HomeModuleDeterministic) {
  for (std::uint32_t v = 0; v < 100; ++v) {
    EXPECT_EQ(prom_home_module(VarId(v), 1024),
              prom_home_module(VarId(v), 1024));
  }
}

TEST(Prom, LookupPhaseAddsTimeNotSemantics) {
  const std::uint32_t n = 32;
  auto base = make_scheme({.kind = SchemeKind::kHpMot, .n = n, .seed = 3});
  auto prom = make_scheme(
      {.kind = SchemeKind::kHpMot, .n = n, .seed = 3, .prom_lookup = true});
  util::Rng rng(5);
  const auto vars = rng.sample_without_replacement(base.m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  const auto rb = base.engine->run_step(reqs);
  const auto rp = prom.engine->run_step(reqs);
  // Same copies accessed (protocol semantics unchanged)...
  EXPECT_EQ(rb.accessed_mask, rp.accessed_mask);
  // ...but the lookup phase costs strictly positive extra cycles.
  EXPECT_GT(rp.time, rb.time);
  const auto* engine = dynamic_cast<const MotEngine*>(prom.engine);
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->prom_cycles(), 0u);
  EXPECT_EQ(rp.time - rb.time, engine->prom_cycles());
}

TEST(Prom, LookupOverheadAtLeastOneRoundTrip) {
  auto prom = make_scheme(
      {.kind = SchemeKind::kHpMot, .n = 16, .seed = 7, .prom_lookup = true});
  const std::vector<majority::VarRequest> reqs = {{VarId(9), ProcId(0)}};
  const auto result = prom.engine->run_step(reqs);
  const auto* engine = dynamic_cast<const MotEngine*>(prom.engine);
  ASSERT_NE(engine, nullptr);
  EXPECT_GE(engine->prom_cycles(), 2 * engine->request_hops() - 1);
  EXPECT_GT(result.time, 0u);
}

TEST(Prom, EndToEndProgramStillCorrect) {
  const std::uint32_t n = 16;
  auto spec = pram::programs::prefix_sum(n);
  pram::MachineConfig cfg{.n_processors = n,
                          .m_shared_cells = spec.m_required,
                          .policy = pram::ConflictPolicy::kErew};
  pram::Machine machine(cfg, std::move(spec.program),
                        make_memory({.kind = SchemeKind::kHpMot,
                                     .n = n,
                                     .seed = 8,
                                     .min_vars = spec.m_required,
                                     .prom_lookup = true}));
  for (std::uint32_t i = 0; i < n; ++i) {
    machine.poke_shared(VarId(i), 1);
  }
  ASSERT_TRUE(machine.run().completed());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(machine.shared(VarId(i)), static_cast<pram::Word>(i + 1));
  }
}

TEST(Prom, WorksOnCrossbarAndLpp) {
  for (const auto kind : {SchemeKind::kCrossbar, SchemeKind::kLppMot}) {
    auto inst = make_scheme(
        {.kind = kind, .n = 16, .seed = 9, .prom_lookup = true});
    util::Rng rng(11);
    const auto vars = rng.sample_without_replacement(inst.m, 16);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < 16; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    const auto result = inst.engine->run_step(reqs);
    for (const auto mask : result.accessed_mask) {
      EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
                inst.c)
          << to_string(kind);
    }
  }
}

}  // namespace
}  // namespace pramsim::core
