// Unit gate for the observability subsystem: registry folds, the
// journal's canonical per-step ordering and ring bound, sink sampling
// and merge, the scoped phase timers (on the deterministic fake clock),
// and the three exporters. Structure-level tests run even under
// -DPRAMSIM_OBS=OFF (the API stays linkable); only the tests that need
// live hooks skip there.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/sink.hpp"
#include "util/stopwatch.hpp"

namespace pramsim {
namespace {

struct FakeClockGuard {
  ~FakeClockGuard() { util::clear_fake_clock_override(); }
};

TEST(ObsRegistry, HistogramBucketsAreLog2) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_floor(11), 1024u);
  // Every value lands in the bucket whose floor is <= it.
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 63ull, 64ull, 12345ull}) {
    const auto b = obs::Histogram::bucket_of(v);
    EXPECT_LE(obs::Histogram::bucket_floor(b), v);
    if (b + 1 < obs::kHistogramBuckets) {
      EXPECT_LT(v, obs::Histogram::bucket_floor(b + 1));
    }
  }
}

TEST(ObsRegistry, CountersGaugesHistogramsAccumulateAndMerge) {
  obs::Registry a;
  a.add("serve.steps");
  a.add("serve.steps", 4);
  a.set_gauge("load.alpha", 0.5);
  a.observe("serve.batch", 8);
  a.observe("serve.batch", 9);

  obs::Registry b;
  b.add("serve.steps", 2);
  b.add("scrub.passes");
  b.set_gauge("load.alpha", 0.75);
  b.observe("serve.batch", 1024);

  a.merge(b);
  EXPECT_EQ(a.counters().at("serve.steps"), 7u);
  EXPECT_EQ(a.counters().at("scrub.passes"), 1u);
  EXPECT_DOUBLE_EQ(a.gauges().at("load.alpha"), 0.75);  // last writer
  const auto& h = a.histograms().at("serve.batch");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 8u + 9u + 1024u);
  EXPECT_EQ(h.min, 8u);
  EXPECT_EQ(h.max, 1024u);
  // 8 and 9 share the [8, 16) bucket.
  EXPECT_EQ(h.buckets[obs::Histogram::bucket_of(8)], 2u);
  EXPECT_EQ(h.buckets[obs::Histogram::bucket_of(1024)], 1u);
}

TEST(ObsJournal, EventsWithinAStepCommitInCanonicalOrder) {
  obs::Journal journal;
  // Step 3, appended in "worker" order that differs from canonical.
  journal.append(3, obs::EventKind::kRelocation, /*entity=*/9);
  journal.append(3, obs::EventKind::kDegradedVote, /*entity=*/5);
  journal.append(3, obs::EventKind::kDegradedVote, /*entity=*/2);
  // Next step forces the pending buffer to commit.
  journal.append(4, obs::EventKind::kScrubRepair, /*entity=*/1);
  journal.flush();

  const auto events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kDegradedVote);
  EXPECT_EQ(events[0].entity, 2u);
  EXPECT_EQ(events[1].kind, obs::EventKind::kDegradedVote);
  EXPECT_EQ(events[1].entity, 5u);
  EXPECT_EQ(events[2].kind, obs::EventKind::kRelocation);
  EXPECT_EQ(events[2].entity, 9u);
  EXPECT_EQ(events[3].step, 4u);  // step order preserved across commits
}

TEST(ObsJournal, RingKeepsTheLastCapacityEvents) {
  obs::Journal journal(/*capacity=*/8);
  for (std::uint64_t step = 1; step <= 100; ++step) {
    journal.append(step, obs::EventKind::kWrongRead, step);
  }
  journal.flush();
  EXPECT_EQ(journal.recorded(), 100u);
  EXPECT_EQ(journal.dropped(), 92u);
  const auto events = journal.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().step, 93u);  // oldest surviving
  EXPECT_EQ(events.back().step, 100u);
}

TEST(ObsJournal, MergeConcatenatesAndReTrims) {
  obs::Journal a(/*capacity=*/4);
  a.append(1, obs::EventKind::kFaultOnset, 7);
  obs::Journal b(/*capacity=*/4);
  for (std::uint64_t step = 2; step <= 6; ++step) {
    b.append(step, obs::EventKind::kScrubRepair, step);
  }
  a.merge(b);  // merge handles b's unflushed pending buffer
  a.flush();
  EXPECT_EQ(a.recorded(), 6u);
  EXPECT_EQ(a.dropped(), 2u);
  const auto events = a.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().step, 3u);
  EXPECT_EQ(events.back().step, 6u);
}

TEST(ObsSink, SamplingIntervalGatesPhaseTimers) {
  const obs::Sink every{obs::SinkOptions{.sample_interval = 1}};
  EXPECT_TRUE(every.sample(1));
  EXPECT_TRUE(every.sample(2));
  const obs::Sink fourth{obs::SinkOptions{.sample_interval = 4}};
  EXPECT_FALSE(fourth.sample(1));
  EXPECT_TRUE(fourth.sample(4));
  EXPECT_TRUE(fourth.sample(8));
  const obs::Sink never{obs::SinkOptions{.sample_interval = 0}};
  EXPECT_FALSE(never.sample(1));
  EXPECT_FALSE(never.sample(0));
}

TEST(ObsSink, MergeFoldsAllThreeComponents) {
  obs::Sink a;
  a.metrics.add("serve.steps", 3);
  a.phases.record(obs::Phase::kServe, 100);
  a.journal.append(1, obs::EventKind::kRehash, 1);

  obs::Sink b;
  b.metrics.add("serve.steps", 2);
  b.phases.record(obs::Phase::kServe, 50);
  b.journal.append(2, obs::EventKind::kRehash, 2);

  a.merge(b);
  a.journal.flush();
  EXPECT_EQ(a.metrics.counters().at("serve.steps"), 5u);
  EXPECT_EQ(a.phases[obs::Phase::kServe].count, 2u);
  EXPECT_EQ(a.journal.events().size(), 2u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(obs::Sink{}.empty());
}

TEST(ObsPhase, ScopedPhaseRecordsOnTheFakeClock) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  FakeClockGuard guard;
  util::set_fake_clock_override(/*start_ns=*/1000, /*tick_ns=*/25);
  obs::PhaseSet set;
  {
    obs::ScopedPhase timer(&set, obs::Phase::kDecode);
  }
  // Two clock queries (construct + destruct), one tick apart.
  EXPECT_EQ(set[obs::Phase::kDecode].count, 1u);
  EXPECT_EQ(set[obs::Phase::kDecode].total_ns, 25u);
  {
    obs::ScopedPhase inert(nullptr, obs::Phase::kDecode);
  }
  // A null set reads the clock zero times: the next timed scope still
  // sees exactly one tick of elapsed fake time.
  {
    obs::ScopedPhase timer(&set, obs::Phase::kDecode);
  }
  EXPECT_EQ(set[obs::Phase::kDecode].count, 2u);
  EXPECT_EQ(set[obs::Phase::kDecode].total_ns, 50u);
}

TEST(ObsExport, JsonSnapshotCarriesSchemaAndSections) {
  obs::Sink sink;
  sink.metrics.add("serve.steps", 3);
  sink.metrics.set_gauge("load.alpha", 0.5);
  sink.metrics.observe("serve.batch", 16);
  sink.phases.record(obs::Phase::kServe, 100);
  sink.journal.append(1, obs::EventKind::kFaultOnset, 7, 0, 1);

  const std::string json = obs::to_json(sink);
  EXPECT_NE(json.find("\"obs_schema_version\": " +
                      std::to_string(obs::kObsSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.steps\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"journal\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"fault_onset\""), std::string::npos);
  EXPECT_NE(json.find("\"manifest\": null"), std::string::npos);

  // Embedded manifest replaces the null.
  obs::SnapshotOptions with_manifest;
  with_manifest.manifest_json = "{\"seed\": 7}";
  const std::string json2 = obs::to_json(sink, with_manifest);
  EXPECT_NE(json2.find("\"manifest\": {\"seed\": 7}"), std::string::npos);

  // The deterministic form drops the wall-clock nanosecond fields but
  // keeps phase counts.
  obs::SnapshotOptions deterministic;
  deterministic.include_timings = false;
  const std::string json3 = obs::to_json(sink, deterministic);
  EXPECT_EQ(json3.find("total_ns"), std::string::npos);
  EXPECT_NE(json3.find("\"phases\""), std::string::npos);
}

TEST(ObsExport, PrometheusExpositionNamesArePromified) {
  obs::Sink sink;
  sink.metrics.add("serve.steps", 3);
  sink.phases.record(obs::Phase::kScrub, 42);
  const std::string text = obs::to_prometheus(sink);
  EXPECT_NE(text.find("pramsim_serve_steps 3"), std::string::npos);
  EXPECT_NE(text.find("pramsim_phase_scrub_count 1"), std::string::npos);
  EXPECT_NE(text.find("pramsim_journal_recorded 0"), std::string::npos);
}

TEST(ObsExport, TablesRenderCountersPhasesAndJournalTail) {
  obs::Sink sink;
  sink.metrics.add("serve.steps", 3);
  sink.phases.record(obs::Phase::kServe, 100);
  sink.journal.append(1, obs::EventKind::kRehash, 1);
  const auto tables = obs::to_tables(sink);
  ASSERT_EQ(tables.size(), 3u);
  for (const auto& table : tables) {
    EXPECT_FALSE(table.to_string(2).empty());
  }
}

// ----- hooks through the pipeline --------------------------------------

TEST(ObsPipeline, StressRunCapturesMetricsAndJournal) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  const faults::FaultSpec fault_spec{.seed = 41, .module_kill_rate = 0.3};
  core::StressOptions options{.steps_per_family = 4, .seed = 9, .trials = 2};
  options.scrub_interval = 2;
  options.scrub_budget = 64;
  options.obs_enabled = true;
  const auto run = pipeline.run_with_faults(fault_spec, options);

  EXPECT_GT(run.obs.metrics.counters().at("majority.steps"), 0u);
  EXPECT_GT(run.obs.metrics.counters().at("fault.onsets"), 0u);
  EXPECT_GT(run.obs.metrics.counters().at("scrub.passes"), 0u);
  EXPECT_GT(run.obs.phases[obs::Phase::kServe].count, 0u);
  EXPECT_GT(run.obs.phases[obs::Phase::kPlanBuild].count, 0u);
  EXPECT_GT(run.obs.journal.events().size(), 0u);
  bool saw_onset = false;
  for (const auto& event : run.obs.journal.events()) {
    saw_onset |= event.kind == obs::EventKind::kFaultOnset;
  }
  EXPECT_TRUE(saw_onset);

  // Detached runs stay observability-free.
  options.obs_enabled = false;
  const auto plain = pipeline.run_with_faults(fault_spec, options);
  EXPECT_TRUE(plain.obs.empty());
}

TEST(ObsPipeline, SampleIntervalZeroKeepsCountersButNoTimers) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kHashed, .n = 16, .seed = 3});
  core::StressOptions options{.steps_per_family = 4, .seed = 9};
  options.obs_enabled = true;
  options.obs_sample_interval = 0;
  const auto run = pipeline.run_stress(options);
  EXPECT_GT(run.obs.metrics.counters().at("hashed.steps"), 0u);
  EXPECT_TRUE(run.obs.phases.empty());
}

}  // namespace
}  // namespace pramsim
