// Gates for the dynamic-fault + background-scrubbing subsystem:
// onset steps gate faults without changing WHICH units fail, scrubbing
// is transparent when nothing is degraded (the fault-rate-0 gate,
// mirroring the equivalence suite's), recovery trajectories are
// bit-identical across reruns and worker-thread counts, and the
// replicated schemes measurably recover after an onset while the
// single-copy baselines stay degraded — the live-system story on top of
// the paper's constant redundancy.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "ida/ida_memory.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/memory_map.hpp"
#include "pram/memory_system.hpp"
#include "util/parallel.hpp"

namespace pramsim {
namespace {

// Crafted hooks with a sharp onset: the fault set activates at `onset`.
class OnsetHooks final : public pram::FaultHooks {
 public:
  std::unordered_set<std::uint32_t> dead;
  std::unordered_set<std::uint64_t> stuck;  ///< entity * 64 + copy
  pram::Word stuck_value = 999;
  std::uint64_t onset = 0;

  [[nodiscard]] bool module_dead(ModuleId module,
                                 std::uint64_t step) const override {
    return step >= onset && dead.count(module.index()) != 0;
  }
  [[nodiscard]] bool stuck_at(std::uint64_t entity, std::uint32_t copy,
                              std::uint64_t step,
                              pram::Word& value) const override {
    if (step < onset || stuck.count(entity * 64 + copy) == 0) {
      return false;
    }
    value = stuck_value;
    return true;
  }
  [[nodiscard]] bool corrupt_write(std::uint64_t, std::uint32_t,
                                   std::uint64_t, std::uint64_t,
                                   pram::Word&) const override {
    return false;
  }
};

pram::Word read_one(pram::MemorySystem& memory, VarId var) {
  const VarId reads[] = {var};
  pram::Word values[] = {0};
  (void)memory.step(reads, values, {});
  return values[0];
}

void write_one(pram::MemorySystem& memory, VarId var, pram::Word value) {
  const pram::VarWrite writes[] = {{var, value}};
  (void)memory.step({}, {}, writes);
}

// ------------------------------------------- dynamic FaultModel ---------

TEST(DynamicFaults, OnsetGatesWithoutChangingTheKillSet) {
  faults::FaultSpec spec{.seed = 7, .module_kill_rate = 0.3};
  const faults::FaultModel st(spec, 64);
  spec.onset_min = 10;
  spec.onset_max = 20;
  const faults::FaultModel dyn(spec, 64);

  // Same modules eventually die; the window only decides when.
  EXPECT_EQ(st.dead_module_count(), dyn.dead_module_count());
  EXPECT_GT(dyn.dead_module_count(), 0u);
  for (std::uint32_t m = 0; m < 64; ++m) {
    const ModuleId module(m);
    EXPECT_EQ(st.module_dead(module, 0), dyn.module_dead(module, 1u << 20));
    if (dyn.module_dead(module, 1u << 20)) {
      const std::uint64_t onset = dyn.module_onset(module);
      EXPECT_GE(onset, 10u);
      EXPECT_LE(onset, 20u);
      EXPECT_FALSE(dyn.module_dead(module, onset - 1));
      EXPECT_TRUE(dyn.module_dead(module, onset));   // sharp activation
      EXPECT_TRUE(dyn.module_dead(module, onset + 5));  // monotone
    }
  }
  EXPECT_GE(dyn.first_onset(), 10u);
  EXPECT_LE(dyn.first_onset(), 20u);
}

TEST(DynamicFaults, OnsetZeroIsTimeInvariantStatic) {
  // The classic regime: every fault active at every step, so threading a
  // step through the hooks changes nothing (the bit-identical guarantee
  // static sweeps rely on).
  const faults::FaultSpec spec{.seed = 42,
                               .module_kill_rate = 0.25,
                               .stuck_rate = 0.1,
                               .corruption_rate = 0.2};
  const faults::FaultModel model(spec, 32);
  for (std::uint32_t m = 0; m < 32; ++m) {
    const bool at0 = model.module_dead(ModuleId(m), 0);
    EXPECT_EQ(at0, model.module_dead(ModuleId(m), 1));
    EXPECT_EQ(at0, model.module_dead(ModuleId(m), 1000));
  }
  for (std::uint64_t entity = 0; entity < 64; ++entity) {
    pram::Word a = 0;
    pram::Word b = 0;
    EXPECT_EQ(model.stuck_at(entity, 1, 0, a),
              model.stuck_at(entity, 1, 999, b));
    EXPECT_EQ(a, b);
    pram::Word wa = 5;
    pram::Word wb = 5;
    EXPECT_EQ(model.corrupt_write(entity, 1, 3, 0, wa),
              model.corrupt_write(entity, 1, 3, 999, wb));
    EXPECT_EQ(wa, wb);
  }
}

TEST(DynamicFaults, FirstOnsetFallsBackToWindowStartWithoutDeadModules) {
  // Stuck/corruption-only dynamic specs have no enumerable kill set;
  // first_onset must still report the earliest possible injury step.
  faults::FaultSpec spec{.seed = 9, .stuck_rate = 0.5};
  spec.onset_min = 16;
  spec.onset_max = 24;
  const faults::FaultModel model(spec, 16);
  EXPECT_EQ(model.dead_module_count(), 0u);
  EXPECT_EQ(model.first_onset(), 16u);
  const faults::FaultModel st({.seed = 9, .stuck_rate = 0.5}, 16);
  EXPECT_EQ(st.first_onset(), 0u);
}

TEST(DynamicFaults, StuckAndCorruptionRespectTheirOnsets) {
  faults::FaultSpec spec{.seed = 13, .stuck_rate = 1.0,
                         .corruption_rate = 1.0};
  spec.onset_min = 50;
  spec.onset_max = 50;
  const faults::FaultModel model(spec, 8);
  pram::Word value = 0;
  EXPECT_FALSE(model.stuck_at(3, 0, 49, value));
  EXPECT_TRUE(model.stuck_at(3, 0, 50, value));
  pram::Word word = 7;
  EXPECT_FALSE(model.corrupt_write(3, 0, 1, 49, word));
  EXPECT_EQ(word, 7u);
  EXPECT_TRUE(model.corrupt_write(3, 0, 1, 50, word));
  EXPECT_NE(word, 7u);
}

// --------------------------------------------- scrub transparency -------

TEST(Scrub, NoOpAtFaultRateZeroForEverySchemeKind) {
  // The transparency gate: with hooks installed but nothing failed,
  // scrubbing repairs nothing and every subsequent read is identical to
  // the unscrubbed run.
  const faults::FaultSpec inert{.seed = 3};
  for (const auto kind : core::all_scheme_kinds()) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 5});
    core::StressOptions plain{.steps_per_family = 3, .seed = 21};
    core::StressOptions scrubbed = plain;
    scrubbed.scrub_interval = 1;
    scrubbed.scrub_budget = 1000;
    const auto a = pipeline.run_with_faults(inert, plain);
    const auto b = pipeline.run_with_faults(inert, scrubbed);
    EXPECT_EQ(b.reliability.units_repaired, 0u) << core::to_string(kind);
    EXPECT_EQ(b.reliability.units_relocated, 0u) << core::to_string(kind);
    EXPECT_EQ(b.scrub.repaired, 0u) << core::to_string(kind);
    EXPECT_GT(b.scrub_passes, 0u) << core::to_string(kind);
    // Same service, bit for bit.
    EXPECT_EQ(a.steps, b.steps) << core::to_string(kind);
    EXPECT_DOUBLE_EQ(a.time.mean(), b.time.mean()) << core::to_string(kind);
    EXPECT_EQ(a.reliability.reads_served, b.reliability.reads_served)
        << core::to_string(kind);
    EXPECT_EQ(a.reliability.wrong_reads, b.reliability.wrong_reads)
        << core::to_string(kind);
  }
}

// ----------------------------------------------- determinism ------------

TEST(Scrub, RecoveryTrajectoriesAreBitIdenticalAcrossReruns) {
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 33});
  faults::FaultSpec spec{.seed = 2027, .module_kill_rate = 0.15};
  spec.onset_min = 8;
  spec.onset_max = 8;
  const core::RecoveryOptions options{
      .steps = 32, .seed = 44, .scrub_interval = 4, .scrub_budget = 128};
  const auto a = pipeline.run_recovery(spec, options);
  const auto b = pipeline.run_recovery(spec, options);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].reads, b.trajectory[i].reads);
    EXPECT_EQ(a.trajectory[i].masked, b.trajectory[i].masked);
    EXPECT_EQ(a.trajectory[i].uncorrectable, b.trajectory[i].uncorrectable);
    EXPECT_EQ(a.trajectory[i].repaired, b.trajectory[i].repaired);
    EXPECT_EQ(a.trajectory[i].relocated, b.trajectory[i].relocated);
    EXPECT_DOUBLE_EQ(a.trajectory[i].degraded_rate,
                     b.trajectory[i].degraded_rate);
  }
  EXPECT_EQ(a.recovered_step, b.recovered_step);
  EXPECT_EQ(a.recovery_steps, b.recovery_steps);
}

TEST(Scrub, RecoveryTrajectoryInvariantUnderGroupParallelServe) {
  // Engine API v2 gate: run_recovery serves through the context entry
  // with a live executor, and replica-level FaultableMemory forwards the
  // plan to the inner scheme's native serve — so the group-parallel
  // backend really runs inside the probe. Its trajectory (scrub passes
  // interleaved, dynamic onset mid-run) must reproduce the serial
  // backend's bit-for-bit at any worker override.
  core::SchemeSpec serial_spec{
      .kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 33};
  core::SchemeSpec gp_spec = serial_spec;
  gp_spec.backend = pram::ServeBackend::kGroupParallel;
  faults::FaultSpec fault{.seed = 2027, .module_kill_rate = 0.15};
  fault.onset_min = 8;
  fault.onset_max = 8;
  const core::RecoveryOptions options{
      .steps = 32, .seed = 44, .scrub_interval = 4, .scrub_budget = 128};
  core::SimulationPipeline serial_pipeline(serial_spec);
  core::SimulationPipeline gp_pipeline(gp_spec);
  ASSERT_EQ(gp_pipeline.scheme().backend,
            pram::ServeBackend::kGroupParallel);
  const auto baseline = serial_pipeline.run_recovery(fault, options);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    util::set_parallel_workers_override(workers);
    const auto gp = gp_pipeline.run_recovery(fault, options);
    util::set_parallel_workers_override(0);
    ASSERT_EQ(baseline.trajectory.size(), gp.trajectory.size()) << workers;
    for (std::size_t i = 0; i < baseline.trajectory.size(); ++i) {
      EXPECT_EQ(baseline.trajectory[i].reads, gp.trajectory[i].reads)
          << workers << " step " << i;
      EXPECT_EQ(baseline.trajectory[i].masked, gp.trajectory[i].masked)
          << workers << " step " << i;
      EXPECT_EQ(baseline.trajectory[i].uncorrectable,
                gp.trajectory[i].uncorrectable)
          << workers << " step " << i;
      EXPECT_EQ(baseline.trajectory[i].wrong, gp.trajectory[i].wrong)
          << workers << " step " << i;
      EXPECT_EQ(baseline.trajectory[i].repaired, gp.trajectory[i].repaired)
          << workers << " step " << i;
      EXPECT_EQ(baseline.trajectory[i].relocated,
                gp.trajectory[i].relocated)
          << workers << " step " << i;
      EXPECT_DOUBLE_EQ(baseline.trajectory[i].degraded_rate,
                       gp.trajectory[i].degraded_rate)
          << workers << " step " << i;
    }
    EXPECT_EQ(baseline.recovered_step, gp.recovered_step) << workers;
    EXPECT_EQ(baseline.recovery_steps, gp.recovery_steps) << workers;
    EXPECT_EQ(baseline.reliability.faults_masked,
              gp.reliability.faults_masked)
        << workers;
    EXPECT_EQ(baseline.reliability.wrong_reads, gp.reliability.wrong_reads)
        << workers;
  }
}

TEST(Scrub, FaultedStressWithScrubbingIsWorkerCountInvariant) {
  // Scrub passes run inside each shard, so the (trial, family, step)
  // merge discipline — bit-identical at any worker count — must hold
  // with scrubbing enabled too.
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  faults::FaultSpec spec{.seed = 61, .module_kill_rate = 0.2};
  spec.onset_min = 2;
  spec.onset_max = 6;
  core::StressOptions options{.steps_per_family = 4, .seed = 17,
                              .trials = 2};
  options.scrub_interval = 2;
  options.scrub_budget = 64;

  util::set_parallel_workers_override(1);
  const auto serial = pipeline.run_with_faults(spec, options);
  util::set_parallel_workers_override(8);
  const auto parallel = pipeline.run_with_faults(spec, options);
  util::set_parallel_workers_override(0);

  EXPECT_EQ(serial.steps, parallel.steps);
  EXPECT_DOUBLE_EQ(serial.time.mean(), parallel.time.mean());
  EXPECT_EQ(serial.scrub_passes, parallel.scrub_passes);
  EXPECT_EQ(serial.scrub.repaired, parallel.scrub.repaired);
  EXPECT_EQ(serial.scrub.relocated, parallel.scrub.relocated);
  EXPECT_EQ(serial.reliability.reads_served,
            parallel.reliability.reads_served);
  EXPECT_EQ(serial.reliability.faults_masked,
            parallel.reliability.faults_masked);
  EXPECT_EQ(serial.reliability.units_repaired,
            parallel.reliability.units_repaired);
  EXPECT_EQ(serial.reliability.wrong_reads, parallel.reliability.wrong_reads);
}

// ------------------------------------- scheme-level repair semantics ----

TEST(MajorityScrub, RelocatesAndRepairsAfterAnOnset) {
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 11});
  auto* majority_mem = dynamic_cast<majority::MajorityMemory*>(memory.get());
  ASSERT_NE(majority_mem, nullptr);
  const VarId var(7);
  const auto modules = majority_mem->map().copies(var);

  OnsetHooks hooks;
  hooks.onset = 3;  // the write below lands while everything is healthy
  hooks.dead.insert(modules.front().index());
  ASSERT_TRUE(memory->set_fault_hooks(&hooks));

  write_one(*memory, var, 4242);                 // step 1: healthy write
  EXPECT_EQ(read_one(*memory, var), 4242);       // step 2: still healthy
  EXPECT_EQ(memory->reliability().faults_masked, 0u);

  EXPECT_EQ(read_one(*memory, var), 4242);       // step 3: onset — masked
  const auto degraded = memory->reliability();
  EXPECT_GE(degraded.faults_masked, 1u);
  EXPECT_GE(degraded.erasures_skipped, 1u);

  // Scrub the whole space: the dead module's copy is re-homed and the
  // value re-replicated.
  const auto pass = memory->scrub(memory->size());
  EXPECT_GE(pass.repaired, 1u);
  EXPECT_GE(pass.relocated, 1u);

  // Post-scrub reads see a full healthy copy set again: the masked count
  // stops growing and the value is intact.
  const auto before = memory->reliability();
  EXPECT_EQ(read_one(*memory, var), 4242);
  const auto after = memory->reliability();
  EXPECT_EQ(after.faults_masked, before.faults_masked);
  EXPECT_EQ(after.erasures_skipped, before.erasures_skipped);

  // A second pass finds nothing left to repair for this variable's
  // modules — but more importantly the pass is idempotent on values.
  EXPECT_EQ(read_one(*memory, var), 4242);
}

TEST(IdaScrub, RedispersesReconstructibleBlocksAfterAnOnset) {
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 32, .seed = 21};
  const std::uint64_t m_vars = 64;
  const std::uint64_t n_blocks = (m_vars + config.b - 1) / config.b;
  const memmap::HashedMap placement(n_blocks, config.n_modules, config.d,
                                    config.seed);
  const auto share_modules = placement.copies(VarId(0));
  const VarId var(1);  // lives in block 0

  ida::IdaMemory memory(m_vars, config);
  OnsetHooks hooks;
  hooks.onset = 3;
  // Kill d-b share modules of block 0: reconstructible, degraded.
  for (std::uint32_t j = 0; j < config.d - config.b; ++j) {
    hooks.dead.insert(share_modules[j].index());
  }
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));

  write_one(memory, var, 777);                // step 1: healthy write
  EXPECT_EQ(read_one(memory, var), 777);      // step 2: healthy read
  EXPECT_EQ(memory.reliability().faults_masked, 0u);

  EXPECT_EQ(read_one(memory, var), 777);      // step 3: onset — masked
  EXPECT_GE(memory.reliability().faults_masked, 1u);

  const auto pass = memory.scrub(memory.num_blocks());
  EXPECT_GE(pass.repaired, 1u);
  EXPECT_GE(pass.relocated, static_cast<std::uint64_t>(config.d - config.b));

  const auto before = memory.reliability();
  EXPECT_EQ(read_one(memory, var), 777);
  const auto after = memory.reliability();
  EXPECT_EQ(after.faults_masked, before.faults_masked);
  EXPECT_EQ(after.erasures_skipped, before.erasures_skipped);
}

TEST(MajorityScrub, UntouchedVariablesRepairByRelocationAloneStayingSparse) {
  // A never-written variable's copies all read the initial {0, 0}, which
  // IS its logical value — so restoring redundancy after a module death
  // needs relocation only, and the sparse CopyStore must stay empty.
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 11});
  auto* majority_mem = dynamic_cast<majority::MajorityMemory*>(memory.get());
  ASSERT_NE(majority_mem, nullptr);
  OnsetHooks hooks;
  hooks.dead.insert(majority_mem->map().copies(VarId(0)).front().index());
  ASSERT_TRUE(memory->set_fault_hooks(&hooks));

  EXPECT_EQ(majority_mem->store().touched_vars(), 0u);
  const auto pass = memory->scrub(memory->size());
  EXPECT_GT(pass.relocated, 0u);
  EXPECT_GT(pass.repaired, 0u);
  EXPECT_EQ(majority_mem->store().touched_vars(), 0u);  // still sparse
  // The relocated copies agree with the logical value, so reads of
  // never-written variables are clean zeros with no erasures counted.
  const auto before = memory->reliability();
  EXPECT_EQ(read_one(*memory, VarId(0)), 0u);
  EXPECT_EQ(memory->reliability().faults_masked, before.faults_masked);
}

TEST(MajorityScrub, StuckOnlyDissentReachesSteadyStateNotPerpetualRepair) {
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 11});
  auto* majority_mem = dynamic_cast<majority::MajorityMemory*>(memory.get());
  ASSERT_NE(majority_mem, nullptr);
  const VarId var(7);
  OnsetHooks hooks;
  hooks.stuck.insert(var.index() * 64 + 0);  // copy 0 stuck, no erasures
  ASSERT_TRUE(memory->set_fault_hooks(&hooks));
  write_one(*memory, var, 1234);

  // A store cannot fix a stuck-at read fault, so the pass must not
  // rewrite the variable (now or on any later pass).
  const auto pass = memory->scrub(memory->size());
  EXPECT_EQ(pass.repaired, 0u);

  // Stale-copy dissent IS repairable: corrupt a non-stuck copy's stored
  // word, and exactly one pass fixes it before going quiet again.
  majority_mem->mutable_store().corrupt(var, 1, 31337);
  const auto repair = memory->scrub(memory->size());
  EXPECT_EQ(repair.repaired, 1u);
  const auto steady = memory->scrub(memory->size());
  EXPECT_EQ(steady.repaired, 0u);
  EXPECT_EQ(read_one(*memory, var), 1234);
}

// Same steady-state gate at region width > 1: a stuck cell in the MIDDLE
// of a region must not defeat the scrub's region fast path — the pass
// sees the stored spans unanimous, drops to the per-word ballot for the
// stuck column (hooks fire), finds store-side repair impossible, and goes
// quiet instead of re-repairing the region forever. Stored-word dissent
// elsewhere in the SAME region still gets exactly one repair.
TEST(MajorityScrub, MidRegionStuckCellReachesSteadyStateAtWidthFour) {
  auto memory = core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                   .n = 16,
                                   .seed = 11,
                                   .region_words = 4});
  auto* majority_mem = dynamic_cast<majority::MajorityMemory*>(memory.get());
  ASSERT_NE(majority_mem, nullptr);
  ASSERT_EQ(majority_mem->store().region_words(), 4u);
  const VarId var(7);  // region [4, 8): offset 3, not a region boundary
  OnsetHooks hooks;
  hooks.stuck.insert(var.index() * 64 + 0);  // copy 0 stuck, no erasures
  ASSERT_TRUE(memory->set_fault_hooks(&hooks));
  write_one(*memory, var, 1234);

  const auto pass = memory->scrub(memory->size());
  EXPECT_EQ(pass.repaired, 0u);
  const auto again = memory->scrub(memory->size());
  EXPECT_EQ(again.repaired, 0u);  // stuck-only dissent stays quiet

  // A stale stored word on a NEIGHBOR variable of the same region defeats
  // the region's unanimity memcmp, so the fallback finds and fixes it —
  // once — while the stuck column still stays untouched.
  majority_mem->mutable_store().corrupt(VarId(5), 1, 31337);
  const auto repair = memory->scrub(memory->size());
  EXPECT_EQ(repair.repaired, 1u);
  const auto steady = memory->scrub(memory->size());
  EXPECT_EQ(steady.repaired, 0u);
  EXPECT_EQ(read_one(*memory, var), 1234);
  EXPECT_EQ(read_one(*memory, VarId(5)), 0);  // repaired back to ground truth
}

TEST(IdaScrub, UntouchedBlocksRepairByRelocationAloneStayingSparse) {
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 32, .seed = 21};
  ida::IdaMemory memory(64, config);
  const std::uint64_t n_blocks = memory.num_blocks();
  const memmap::HashedMap placement(n_blocks, config.n_modules, config.d,
                                    config.seed);
  OnsetHooks hooks;
  hooks.dead.insert(placement.copies(VarId(0)).front().index());
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));

  EXPECT_EQ(memory.touched_blocks(), 0u);
  const auto pass = memory.scrub(n_blocks);
  EXPECT_GT(pass.relocated, 0u);
  EXPECT_EQ(memory.touched_blocks(), 0u);  // zero-encoding rows stay shared
  const auto before = memory.reliability();
  EXPECT_EQ(read_one(memory, VarId(0)), 0u);
  EXPECT_EQ(memory.reliability().faults_masked, before.faults_masked);
}

TEST(IdaScrub, BlocksBelowThresholdStayLost) {
  const ida::IdaMemoryConfig config{
      .b = 4, .d = 8, .n_modules = 8, .seed = 25};
  ida::IdaMemory memory(64, config);
  OnsetHooks hooks;  // every module dead from step 0
  for (std::uint32_t m = 0; m < 8; ++m) {
    hooks.dead.insert(m);
  }
  ASSERT_TRUE(memory.set_fault_hooks(&hooks));
  write_one(memory, VarId(1), 4242);
  const auto pass = memory.scrub(memory.num_blocks());
  EXPECT_EQ(pass.repaired, 0u);  // nothing to reconstruct from
  EXPECT_GE(memory.reliability().uncorrectable, 0u);
}

// --------------------------------------- pipeline recovery probe --------

TEST(Recovery, ReplicatedSchemesRecoverAndSingleCopyDoesNot) {
  faults::FaultSpec spec{.seed = 2027, .module_kill_rate = 0.15};
  spec.onset_min = 16;
  spec.onset_max = 16;
  core::RecoveryOptions probe{
      .steps = 64, .seed = 44, .scrub_interval = 4, .scrub_budget = 128};
  core::RecoveryOptions control = probe;
  control.scrub_interval = 0;

  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kIda}) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 33});
    const auto scrubbed = pipeline.run_recovery(spec, probe);
    const auto unscrubbed = pipeline.run_recovery(spec, control);
    // The onset degrades service...
    EXPECT_EQ(scrubbed.onset_step, 16) << core::to_string(kind);
    EXPECT_GT(scrubbed.peak_degraded_rate, probe.recovery_threshold)
        << core::to_string(kind);
    // ...scrubbing recovers it (the masked rate drops back under the
    // threshold and stays there)...
    EXPECT_GE(scrubbed.recovered_step, 0) << core::to_string(kind);
    EXPECT_GE(scrubbed.recovery_steps, 0) << core::to_string(kind);
    EXPECT_LE(scrubbed.final_degraded_rate, probe.recovery_threshold)
        << core::to_string(kind);
    EXPECT_GT(scrubbed.scrub.repaired, 0u) << core::to_string(kind);
    // ...while without scrubbing the degradation is permanent.
    EXPECT_LT(unscrubbed.recovered_step, 0) << core::to_string(kind);
    EXPECT_GT(unscrubbed.final_degraded_rate, 0.0) << core::to_string(kind);
    // Erasure-only faults never produce silent lies either way.
    EXPECT_EQ(scrubbed.reliability.wrong_reads, 0u) << core::to_string(kind);
    EXPECT_EQ(unscrubbed.reliability.wrong_reads, 0u)
        << core::to_string(kind);
  }

  core::SimulationPipeline hashed(
      {.kind = core::SchemeKind::kHashed, .n = 16, .seed = 33});
  const auto single = hashed.run_recovery(spec, probe);
  EXPECT_EQ(single.scrub.repaired, 0u);     // nothing to rebuild from
  EXPECT_LT(single.recovered_step, 0);      // never recovers
  EXPECT_GT(single.final_degraded_rate, 0.0);
}

TEST(Recovery, FaultSweepReportsRecoveryAlongsideBreakingPoint) {
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  core::FaultSweepOptions options;
  options.rates = {0.0, 0.3};
  options.proto = {.seed = 71, .module_kill_rate = 1.0,
                   .corruption_rate = 0.0};
  options.proto.onset_min = 8;
  options.proto.onset_max = 8;
  options.stress = {.steps_per_family = 2, .seed = 19};
  options.measure_recovery = true;
  options.recovery = {.steps = 48, .seed = 23, .scrub_interval = 4,
                      .scrub_budget = 128};
  const auto sweep = pipeline.run_fault_sweep(options);
  ASSERT_EQ(sweep.levels.size(), 2u);
  EXPECT_EQ(sweep.levels[0].recovery_steps, -1);  // inert level: skipped
  EXPECT_GE(sweep.levels[1].recovery_steps, 0);   // measured and recovered
  EXPECT_EQ(sweep.worst_recovery_steps, sweep.levels[1].recovery_steps);
  EXPECT_LT(sweep.total.breaking_fault_rate, 0.0);  // erasures never lie
}

}  // namespace
}  // namespace pramsim
