// Tests for the scheme factory, the 2DMOT engine, the trace driver, and
// cross-scheme end-to-end equivalence: the same P-RAM programs must
// produce bit-identical results on the ideal machine and on every
// simulating machine.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/driver.hpp"
#include "core/mot_engine.hpp"
#include "core/schemes.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/memory_map.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "pram/trace.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::core {
namespace {

using majority::VarRequest;

std::vector<VarRequest> distinct_requests(std::uint32_t count, std::uint64_t m,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const auto vars = rng.sample_without_replacement(m, count);
  std::vector<VarRequest> reqs;
  reqs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  return reqs;
}

// --------------------------------------------------------- factory ------

TEST(Schemes, HpMotGeometryAndConstantRedundancy) {
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = n});
    EXPECT_EQ(inst.n_modules, n * n) << n;       // side = n at eps = 1
    EXPECT_EQ(inst.r, 7u) << n;                  // constant in n
    EXPECT_NEAR(inst.eps_effective, 1.0, 1e-9);
    EXPECT_GT(inst.switches, 0u);
    // O(M) switches: 2M-ish.
    EXPECT_LT(inst.switches, 2ull * inst.n_modules);
    EXPECT_EQ(inst.request_hops, 3u * static_cast<std::uint32_t>(util::ilog2_ceil(n)) + 1);
  }
}

TEST(Schemes, UwMpcRedundancyGrowsWithN) {
  const auto small = make_scheme({.kind = SchemeKind::kUwMpc, .n = 64});
  const auto large = make_scheme({.kind = SchemeKind::kUwMpc, .n = 4096});
  EXPECT_GT(large.r, small.r);
  EXPECT_EQ(small.n_modules, 64u);  // M = n: the MPC constraint
  EXPECT_EQ(large.n_modules, 4096u);
}

TEST(Schemes, LppUsesLogRedundancyOnNModules) {
  const auto inst = make_scheme({.kind = SchemeKind::kLppMot, .n = 64});
  EXPECT_EQ(inst.n_modules, 64u);
  EXPECT_GT(inst.r, 7u);  // log-ish redundancy at m = 4096
  EXPECT_GT(inst.switches, 0u);
}

TEST(Schemes, CrossbarPaysSwitchesForGranularity) {
  const auto hp = make_scheme({.kind = SchemeKind::kHpMot, .n = 64});
  const auto xbar = make_scheme({.kind = SchemeKind::kCrossbar, .n = 64});
  EXPECT_EQ(xbar.r, hp.r);              // same constant redundancy
  EXPECT_GT(xbar.switches, hp.switches);  // O(nM) vs O(M)
}

TEST(Schemes, DmmpcHonorsEpsilon) {
  const auto coarse =
      make_scheme({.kind = SchemeKind::kDmmpc, .n = 256, .eps = 0.5});
  const auto fine =
      make_scheme({.kind = SchemeKind::kDmmpc, .n = 256, .eps = 1.5});
  EXPECT_LT(coarse.n_modules, fine.n_modules);
  EXPECT_GE(coarse.r, fine.r);  // finer granularity => no more copies
}

// ------------------------------------------------------- MOT engine -----

TEST(MotEngine, EveryRequestReachesThreshold) {
  auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = 32});
  const auto reqs = distinct_requests(32, inst.m, 3);
  const auto result = inst.engine->run_step(reqs);
  ASSERT_EQ(result.accessed_mask.size(), reqs.size());
  for (const auto mask : result.accessed_mask) {
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)), inst.c);
  }
  EXPECT_GT(result.time, 0u);
  EXPECT_GE(result.work, static_cast<std::uint64_t>(inst.c) * reqs.size());
}

TEST(MotEngine, TimeAtLeastOneRoundTrip) {
  auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = 32});
  const std::vector<VarRequest> reqs = {{VarId(5), ProcId(0)}};
  const auto result = inst.engine->run_step(reqs);
  EXPECT_GE(result.time, 2 * inst.request_hops - 1);
}

TEST(MotEngine, DeterministicAcrossRuns) {
  auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = 64});
  const auto reqs = distinct_requests(64, inst.m, 7);
  const auto a = inst.engine->run_step(reqs);
  const auto b = inst.engine->run_step(reqs);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.accessed_mask, b.accessed_mask);
}

TEST(MotEngine, EmptyStepIsFree) {
  auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = 16});
  const auto result = inst.engine->run_step({});
  EXPECT_EQ(result.time, 0u);
  EXPECT_EQ(result.work, 0u);
}

TEST(MotEngine, LcaTurnaroundNoSlowerOnAverage) {
  const auto reqs_seed = 9;
  auto via_root = make_scheme({.kind = SchemeKind::kHpMot, .n = 64});
  auto via_lca = make_scheme(
      {.kind = SchemeKind::kHpMot, .n = 64, .lca_turnaround = true});
  const auto reqs = distinct_requests(64, via_root.m, reqs_seed);
  const auto t_root = via_root.engine->run_step(reqs).time;
  const auto t_lca = via_lca.engine->run_step(reqs).time;
  EXPECT_LE(t_lca, t_root + t_root / 4);  // allow scheduling noise
}

TEST(MotEngine, AllThreeSchemesComplete) {
  for (const auto kind :
       {SchemeKind::kHpMot, SchemeKind::kLppMot, SchemeKind::kCrossbar}) {
    auto inst = make_scheme({.kind = kind, .n = 16});
    const auto reqs = distinct_requests(16, inst.m, 11);
    const auto result = inst.engine->run_step(reqs);
    for (const auto mask : result.accessed_mask) {
      EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)),
                inst.c)
          << to_string(kind);
    }
  }
}

TEST(MotEngine, Stage1BoundsLiveSet) {
  auto inst = make_scheme({.kind = SchemeKind::kHpMot, .n = 128});
  const auto reqs = distinct_requests(128, inst.m, 13);
  const auto result = inst.engine->run_step(reqs);
  EXPECT_LE(result.stats.live_after_stage1, 128u / inst.r + 1);
}

// ---------------------------------------------------------- driver ------

TEST(Driver, ToRequestsDeduplicates) {
  pram::AccessBatch batch;
  batch.push_back({ProcId(0), pram::AccessOp::kRead, VarId(5), 0});
  batch.push_back({ProcId(1), pram::AccessOp::kWrite, VarId(5), 1});
  batch.push_back({ProcId(2), pram::AccessOp::kRead, VarId(9), 0});
  const auto reqs = to_requests(batch);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].var, VarId(5));
  // Read + write of one variable collapse to a single request that
  // preserves the write — not whichever access came first.
  EXPECT_EQ(reqs[0].op, pram::AccessOp::kWrite);
  EXPECT_EQ(reqs[0].requester, ProcId(1));
  EXPECT_EQ(reqs[1].var, VarId(9));
  EXPECT_EQ(reqs[1].op, pram::AccessOp::kRead);
  EXPECT_EQ(reqs[1].requester, ProcId(2));
}

TEST(Driver, ToRequestsLowestWriterWins) {
  pram::AccessBatch batch;
  batch.push_back({ProcId(4), pram::AccessOp::kWrite, VarId(3), 40});
  batch.push_back({ProcId(2), pram::AccessOp::kWrite, VarId(3), 20});
  batch.push_back({ProcId(6), pram::AccessOp::kWrite, VarId(3), 60});
  const auto reqs = to_requests(batch);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].op, pram::AccessOp::kWrite);
  EXPECT_EQ(reqs[0].requester, ProcId(2));
}

TEST(Driver, CombineBatchResolvesConcurrentAccesses) {
  pram::AccessBatch batch;
  batch.push_back({ProcId(0), pram::AccessOp::kRead, VarId(5), 0});
  batch.push_back({ProcId(3), pram::AccessOp::kWrite, VarId(5), 33});
  batch.push_back({ProcId(1), pram::AccessOp::kWrite, VarId(5), 11});
  batch.push_back({ProcId(2), pram::AccessOp::kRead, VarId(5), 0});
  batch.push_back({ProcId(4), pram::AccessOp::kRead, VarId(9), 0});
  const auto combined = combine_batch(batch);
  // Var 5 is both read and written: it must appear once in each list,
  // with the lowest-id writer's value committing.
  ASSERT_EQ(combined.reads.size(), 2u);
  EXPECT_EQ(combined.reads[0], VarId(5));
  EXPECT_EQ(combined.reads[1], VarId(9));
  ASSERT_EQ(combined.writes.size(), 1u);
  EXPECT_EQ(combined.writes[0].var, VarId(5));
  EXPECT_EQ(combined.writes[0].value, 11);
}

TEST(Driver, StressAggregatesAllFamilies) {
  SimulationPipeline pipeline({.kind = SchemeKind::kDmmpc, .n = 64});
  const auto result =
      pipeline.run_stress({.steps_per_family = 3, .seed = 21});
  // 3 families x 3 steps + 3 adversarial steps.
  EXPECT_EQ(result.steps, 12u);
  EXPECT_GT(result.time.mean(), 0.0);
  EXPECT_GT(result.work.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.storage_factor,
                   static_cast<double>(pipeline.scheme().r));
  EXPECT_GT(result.redundancy_weighted_cost(), result.time.mean());
}

TEST(Driver, StressShardsAcrossTrialsDeterministically) {
  SimulationPipeline pipeline({.kind = SchemeKind::kDmmpc, .n = 64});
  const auto one = pipeline.run_stress(
      {.steps_per_family = 2, .seed = 5, .trials = 3});
  const auto two = pipeline.run_stress(
      {.steps_per_family = 2, .seed = 5, .trials = 3});
  // 3 trials x (3 families x 2 steps + 2 adversarial).
  EXPECT_EQ(one.steps, 24u);
  EXPECT_EQ(one.steps, two.steps);
  EXPECT_DOUBLE_EQ(one.time.mean(), two.time.mean());
  EXPECT_DOUBLE_EQ(one.work.mean(), two.work.mean());
}

TEST(Driver, StressUsesKnownHashPreimageAttackForMaplessSchemes) {
  SimulationPipeline pipeline({.kind = SchemeKind::kHashed, .n = 64});
  const auto result =
      pipeline.run_stress({.steps_per_family = 3, .seed = 21});
  // No memory map, but the hashed baseline knows its own hash: 3
  // families x 3 steps PLUS 3 known-hash preimage batches.
  EXPECT_EQ(result.steps, 12u);
  EXPECT_DOUBLE_EQ(result.storage_factor, 1.0);

  // The attack itself: every returned variable collides on one module,
  // so the batch costs a full serialization (time ~ batch size).
  const auto& memory = *pipeline.scheme().memory;
  const auto vars = memory.adversarial_vars(64, 99);
  ASSERT_EQ(vars.size(), 64u);
  std::unordered_set<std::uint32_t> distinct;
  for (const auto var : vars) {
    distinct.insert(var.value());
  }
  EXPECT_EQ(distinct.size(), 64u);
  pram::AccessBatch batch;
  for (std::uint32_t i = 0; i < vars.size(); ++i) {
    batch.push_back({ProcId(i), pram::AccessOp::kRead, vars[i], 0});
  }
  const auto cost = pipeline.run_batch(batch);
  EXPECT_EQ(cost.time, 64u);  // one module serves all 64 requests serially
}

// ------------------------------------- end-to-end, all schemes ----------

struct EndToEndCase {
  SchemeKind kind;
  const char* name;
};

class EndToEndTest : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEndTest, PrefixSumMatchesIdealPram) {
  const std::uint32_t n = 16;
  auto spec_ideal = pram::programs::prefix_sum(n);
  auto spec_sim = pram::programs::prefix_sum(n);

  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = spec_ideal.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;

  pram::Machine ideal(cfg, std::move(spec_ideal.program));
  SchemeSpec scheme{.kind = GetParam().kind,
                    .n = n,
                    .seed = 5,
                    .min_vars = spec_sim.m_required};
  pram::Machine simulated(cfg, std::move(spec_sim.program),
                          make_memory(scheme));

  util::Rng rng(1234);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<pram::Word>(rng.below(100));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  const auto a = ideal.run();
  const auto b = simulated.run();
  ASSERT_TRUE(a.completed());
  ASSERT_TRUE(b.completed()) << GetParam().name;
  EXPECT_EQ(a.steps, b.steps);
  if (GetParam().kind != SchemeKind::kHashed) {
    // Hashed single-copy memory charges only its max module load, which
    // can undercut the flat memory's 1-per-step on access-free steps.
    EXPECT_GT(b.mem_time, a.mem_time) << "simulation must cost time";
  }
  EXPECT_GT(b.mem_time, 0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i)))
        << GetParam().name << " cell " << i;
  }
}

TEST_P(EndToEndTest, OddEvenSortMatchesIdealPram) {
  const std::uint32_t n = 8;
  auto spec_ideal = pram::programs::odd_even_sort(n);
  auto spec_sim = pram::programs::odd_even_sort(n);

  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = spec_ideal.m_required;
  cfg.policy = pram::ConflictPolicy::kErew;

  pram::Machine ideal(cfg, std::move(spec_ideal.program));
  SchemeSpec scheme{.kind = GetParam().kind,
                    .n = n,
                    .seed = 6,
                    .min_vars = spec_sim.m_required};
  pram::Machine simulated(cfg, std::move(spec_sim.program),
                          make_memory(scheme));
  util::Rng rng(99);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<pram::Word>(rng.below(50));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run(2'000'000).completed()) << GetParam().name;
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i)))
        << GetParam().name << " cell " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, EndToEndTest,
    ::testing::Values(EndToEndCase{SchemeKind::kHpMot, "hp_mot"},
                      EndToEndCase{SchemeKind::kDmmpc, "dmmpc"},
                      EndToEndCase{SchemeKind::kUwMpc, "uw_mpc"},
                      EndToEndCase{SchemeKind::kLppMot, "lpp_mot"},
                      EndToEndCase{SchemeKind::kCrossbar, "crossbar"},
                      EndToEndCase{SchemeKind::kIda, "ida"},
                      EndToEndCase{SchemeKind::kHashed, "hashed"}),
    [](const ::testing::TestParamInfo<EndToEndCase>& param_info) {
      return param_info.param.name;
    });

TEST(EndToEnd, CrewListRankOnHpMot) {
  // CREW program (concurrent reads combined before the protocol runs).
  const std::uint32_t n = 16;
  auto spec_ideal = pram::programs::list_rank(n);
  auto spec_sim = pram::programs::list_rank(n);
  pram::MachineConfig cfg;
  cfg.n_processors = n;
  cfg.m_shared_cells = spec_ideal.m_required;
  cfg.policy = pram::ConflictPolicy::kCrew;
  pram::Machine ideal(cfg, std::move(spec_ideal.program));
  pram::Machine simulated(
      cfg, std::move(spec_sim.program),
      make_memory({.kind = SchemeKind::kHpMot,
                   .n = n,
                   .seed = 8,
                   .min_vars = spec_sim.m_required}));
  util::Rng rng(7);
  const auto order = rng.permutation(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const auto node = order[pos];
    const auto succ = pos + 1 < n ? order[pos + 1] : node;
    for (auto* machine : {&ideal, &simulated}) {
      machine->poke_shared(VarId(node), succ);
      machine->poke_shared(VarId(n + node), pos + 1 < n ? 1 : 0);
    }
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run().completed());
  for (std::uint32_t i = 0; i < 2 * n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i))) << i;
  }
}

}  // namespace
}  // namespace pramsim::core
