// cache::CachedMemory contract tests: hit/miss/eviction/write-back
// accounting, bit-exactness against FlatMemory under every skewed trace
// family, serve()-vs-step() equivalence, fault-consistent invalidation
// (dead backing modules and scrub relocations), and worker-count
// invariance of the cached pipeline (results AND obs snapshots).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cached_memory.hpp"
#include "core/driver.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "obs/export.hpp"
#include "obs/sink.hpp"
#include "pram/memory_system.hpp"
#include "pram/serve_context.hpp"
#include "pram/snapshot.hpp"
#include "pram/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

/// Combine a raw batch and serve it through the legacy step() entry.
/// Returns the distinct reads with their values (combine order).
struct StepIo {
  std::vector<VarId> reads;
  std::vector<pram::Word> values;
  std::vector<pram::VarWrite> writes;
};

StepIo run_step(pram::MemorySystem& memory, core::PlanBuilder& builder,
                const pram::AccessBatch& batch) {
  auto combined = builder.combine(batch);
  StepIo io;
  io.reads = std::move(combined.reads);
  io.writes = std::move(combined.writes);
  io.values.assign(io.reads.size(), 0);
  memory.step(io.reads, io.values, io.writes);
  return io;
}

TEST(CachedMemory, HitMissEvictionWriteBackAccounting) {
  auto flat = std::make_unique<pram::FlatMemory>(8);
  pram::FlatMemory* inner = flat.get();
  cache::CachedMemory cached(std::move(flat),
                             cache::CacheConfig{.capacity = 2});

  std::vector<VarId> no_reads;
  std::vector<pram::Word> no_values;
  const std::vector<pram::VarWrite> writes = {{VarId(0), 10},
                                              {VarId(1), 11}};
  cached.step(no_reads, no_values, writes);
  // Dirty lines: the inner memory has not seen the stores yet, but the
  // cache's peek is authoritative.
  EXPECT_EQ(inner->peek(VarId(0)), 0);
  EXPECT_EQ(cached.peek(VarId(0)), 10);
  EXPECT_EQ(cached.occupancy(), 2u);

  std::vector<VarId> reads = {VarId(0), VarId(1)};
  std::vector<pram::Word> values(2, 0);
  const std::vector<pram::VarWrite> no_writes;
  cached.step(reads, values, no_writes);
  EXPECT_EQ(values[0], 10);
  EXPECT_EQ(values[1], 11);
  EXPECT_EQ(cached.stats().hits, 2u);
  EXPECT_EQ(cached.stats().misses, 0u);

  // Two cold reads at capacity 2: both resident lines are evicted and
  // their dirty values written back to the inner memory.
  reads = {VarId(2), VarId(3)};
  values.assign(2, 0);
  cached.step(reads, values, no_writes);
  EXPECT_EQ(values[0], 0);
  EXPECT_EQ(values[1], 0);
  EXPECT_EQ(cached.stats().misses, 2u);
  EXPECT_EQ(cached.stats().evictions, 2u);
  EXPECT_EQ(cached.stats().writebacks, 2u);
  EXPECT_EQ(inner->peek(VarId(0)), 10);
  EXPECT_EQ(inner->peek(VarId(1)), 11);
  EXPECT_EQ(cached.peek(VarId(0)), 10);
  EXPECT_EQ(cached.occupancy(), 2u);
}

// The cache is a pure performance layer: under every trace family —
// including the new skewed ones — a cached FlatMemory must return the
// exact values a bare FlatMemory returns, and the final memory images
// must match cell for cell.
TEST(CachedMemory, BitExactVsFlatMemoryAcrossFamilies) {
  const std::uint32_t n = 16;
  const std::uint64_t m = 256;
  for (const auto family :
       {pram::TraceFamily::kUniform, pram::TraceFamily::kHotspot,
        pram::TraceFamily::kZipfian, pram::TraceFamily::kWorkingSet}) {
    pram::FlatMemory reference(m);
    cache::CachedMemory cached(std::make_unique<pram::FlatMemory>(m),
                               cache::CacheConfig{.capacity = 32});
    util::Rng init(99);
    for (std::uint64_t v = 0; v < m; ++v) {
      const auto word = static_cast<pram::Word>(init.below(1 << 20));
      reference.poke(VarId(static_cast<std::uint32_t>(v)), word);
      cached.poke(VarId(static_cast<std::uint32_t>(v)), word);
    }

    pram::TraceParams params;
    params.write_fraction = 0.4;
    params.working_set_size = 24;
    params.working_set_period = 8;
    util::Rng rng(7);
    const auto trace = pram::make_trace(family, n, m, 60, rng, params);
    core::PlanBuilder builder;
    for (const auto& batch : trace) {
      auto combined = builder.combine(batch);
      std::vector<pram::Word> want(combined.reads.size(), 0);
      std::vector<pram::Word> got(combined.reads.size(), 0);
      reference.step(combined.reads, want, combined.writes);
      cached.step(combined.reads, got, combined.writes);
      ASSERT_EQ(want, got) << pram::to_string(family);
    }
    EXPECT_GT(cached.stats().hits, 0u) << pram::to_string(family);
    EXPECT_GT(cached.stats().misses, 0u) << pram::to_string(family);
    EXPECT_LE(cached.occupancy(), cached.capacity());
    for (std::uint64_t v = 0; v < m; ++v) {
      ASSERT_EQ(reference.peek(VarId(static_cast<std::uint32_t>(v))),
                cached.peek(VarId(static_cast<std::uint32_t>(v))))
          << pram::to_string(family) << " cell " << v;
    }
  }
}

// Tiny capacity + same-step read/write collisions: a variable that
// misses as a read and then has its write bypassed (every slot pinned)
// must still resolve read-before-write. capacity = 1 with 4 processors
// forces the bypass path every step.
TEST(CachedMemory, BypassedWritesStayReadBeforeWrite) {
  const std::uint32_t n = 4;
  const std::uint64_t m = 16;
  pram::FlatMemory reference(m);
  cache::CachedMemory cached(std::make_unique<pram::FlatMemory>(m),
                             cache::CacheConfig{.capacity = 1});
  pram::TraceParams params;
  params.write_fraction = 0.6;
  params.hotspot_fraction = 0.8;
  params.hotset_size = 3;
  util::Rng rng(17);
  const auto trace =
      pram::make_trace(pram::TraceFamily::kHotspot, n, m, 80, rng, params);
  core::PlanBuilder builder;
  for (const auto& batch : trace) {
    auto combined = builder.combine(batch);
    std::vector<pram::Word> want(combined.reads.size(), 0);
    std::vector<pram::Word> got(combined.reads.size(), 0);
    reference.step(combined.reads, want, combined.writes);
    cached.step(combined.reads, got, combined.writes);
    ASSERT_EQ(want, got);
  }
  EXPECT_GT(cached.stats().bypasses, 0u)
      << "capacity 1 under 4 processors should have forced write-through";
  for (std::uint64_t v = 0; v < m; ++v) {
    ASSERT_EQ(reference.peek(VarId(static_cast<std::uint32_t>(v))),
              cached.peek(VarId(static_cast<std::uint32_t>(v))));
  }
}

// Hit rate must grow with the Zipf skew exponent at fixed capacity —
// the steeper the head, the more traffic the hot set captures.
TEST(CachedMemory, HitRateGrowsWithZipfSkew) {
  const std::uint32_t n = 64;
  const std::uint64_t m = 4096;
  std::vector<double> hit_rates;
  for (const double s : {0.2, 0.8, 1.4}) {
    cache::CachedMemory cached(std::make_unique<pram::FlatMemory>(m),
                               cache::CacheConfig{.capacity = 256});
    pram::TraceParams params;
    params.write_fraction = 0.3;
    params.zipf_exponent = s;
    util::Rng rng(23);
    const auto trace =
        pram::make_trace(pram::TraceFamily::kZipfian, n, m, 100, rng,
                         params);
    core::PlanBuilder builder;
    for (const auto& batch : trace) {
      run_step(cached, builder, batch);
    }
    hit_rates.push_back(cached.stats().hit_rate());
  }
  EXPECT_GT(hit_rates[1] + 0.02, hit_rates[0]);
  EXPECT_GT(hit_rates[2] + 0.02, hit_rates[1]);
  EXPECT_GT(hit_rates[2], hit_rates[0] + 0.05)
      << "skew 1.4 vs 0.2 should move the hit rate decisively";
}

// serve(plan, ctx) and the legacy step() funnel must produce identical
// values and identical cache statistics over a mixed trace, with a real
// redundant scheme behind the cache.
TEST(CachedMemory, ServeMatchesStepOverScheme) {
  const std::uint32_t n = 16;
  const core::SchemeSpec spec{
      .kind = core::SchemeKind::kDmmpc, .n = n, .seed = 3};
  cache::CachedMemory by_step(core::make_memory(spec),
                              cache::CacheConfig{.capacity = 32});
  cache::CachedMemory by_serve(core::make_memory(spec),
                               cache::CacheConfig{.capacity = 32});
  const std::uint64_t m = by_step.size();
  ASSERT_EQ(m, by_serve.size());

  pram::TraceParams params;
  params.write_fraction = 0.4;
  util::Rng rng(31);
  const auto trace = pram::make_trace(pram::TraceFamily::kZipfian, n, m,
                                      40, rng, params);
  core::PlanBuilder step_builder;
  core::PlanBuilder serve_builder;
  pram::ServeContext ctx;
  for (const auto& batch : trace) {
    const auto io = run_step(by_step, step_builder, batch);
    const auto& plan = serve_builder.build(batch, by_serve);
    std::vector<pram::Word> serve_values(plan.reads.size(), 0);
    ctx.bind(serve_values);
    by_serve.serve(plan, ctx);
    ASSERT_EQ(io.values, serve_values);
  }
  EXPECT_EQ(by_step.stats().hits, by_serve.stats().hits);
  EXPECT_EQ(by_step.stats().misses, by_serve.stats().misses);
  EXPECT_EQ(by_step.stats().evictions, by_serve.stats().evictions);
  EXPECT_EQ(by_step.stats().writebacks, by_serve.stats().writebacks);
  EXPECT_EQ(by_step.stats().bypasses, by_serve.stats().bypasses);
}

// Production composition under dynamic faults: FaultableMemory wraps the
// cached scheme, modules die mid-run, and the trace-consistency oracle
// must score ZERO wrong reads — hot lines whose backing died since fill
// are invalidated and re-served, never returned stale.
TEST(CachedMemory, DeadBackingInvalidationKeepsOracleClean) {
  auto cached = std::make_unique<cache::CachedMemory>(
      core::make_memory(
          {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3}),
      cache::CacheConfig{.capacity = 128});
  const cache::CachedMemory* cache_view = cached.get();
  const faults::FaultSpec fault_spec{.seed = 41,
                                     .module_kill_rate = 0.4,
                                     .onset_min = 5,
                                     .onset_max = 30};
  faults::FaultableMemory faulty(std::move(cached), fault_spec);

  pram::TraceParams params;
  params.write_fraction = 0.2;
  params.zipf_exponent = 1.1;
  util::Rng rng(53);
  const auto trace = pram::make_trace(pram::TraceFamily::kZipfian, 16,
                                      faulty.size(), 80, rng, params);
  const auto result = core::run_trace(faulty, trace);
  EXPECT_GT(result.steps, 0u);
  const auto reliability = faulty.reliability();
  EXPECT_GT(reliability.reads_served, 0u);
  EXPECT_EQ(reliability.wrong_reads, 0u);
  EXPECT_GT(cache_view->stats().hits, 0u);
  EXPECT_GT(cache_view->stats().invalidations, 0u)
      << "deaths landed in the onset window but no hot line was dropped";
}

/// FlatMemory plus a scriptable scrub pass, so relocation invalidation
/// is testable without threading a real fault sweep underneath.
class RelocatingMemory final : public pram::MemorySystem {
 public:
  explicit RelocatingMemory(std::uint64_t m) : flat_(m) {}

  pram::MemStepCost step(std::span<const VarId> reads,
                         std::span<pram::Word> read_values,
                         std::span<const pram::VarWrite> writes) override {
    return flat_.step(reads, read_values, writes);
  }
  [[nodiscard]] std::uint64_t size() const override { return flat_.size(); }
  [[nodiscard]] pram::Word peek(VarId var) const override {
    return flat_.peek(var);
  }
  void poke(VarId var, pram::Word value) override { flat_.poke(var, value); }
  pram::ScrubResult scrub(std::uint64_t budget) override {
    pram::ScrubResult result;
    result.scanned = budget;
    result.relocated = pending_relocations_;
    pending_relocations_ = 0;
    return result;
  }
  void relocate_on_next_scrub(std::uint64_t n) { pending_relocations_ = n; }

 private:
  pram::FlatMemory flat_;
  std::uint64_t pending_relocations_ = 0;
};

TEST(CachedMemory, ScrubRelocationInvalidatesCleanLinesOnly) {
  auto inner = std::make_unique<RelocatingMemory>(8);
  RelocatingMemory* reloc = inner.get();
  cache::CachedMemory cached(std::move(inner),
                             cache::CacheConfig{.capacity = 4});
  obs::Sink sink;
  cached.set_observer(&sink);

  // Fill a clean line (v0, read) and a dirty line (v1, written).
  std::vector<VarId> reads = {VarId(0)};
  std::vector<pram::Word> values(1, 0);
  const std::vector<pram::VarWrite> writes = {{VarId(1), 77}};
  cached.step(reads, values, writes);
  EXPECT_EQ(values[0], 0);

  // A scrub pass that relocated data: every clean line filled before it
  // is suspect. The inner value "moves" (changes) to make staleness
  // observable as a value, not just a counter.
  reloc->relocate_on_next_scrub(1);
  const auto scrub = cached.scrub(64);
  EXPECT_EQ(scrub.relocated, 1u);
  reloc->poke(VarId(0), 42);

  values.assign(1, 0);
  cached.step(reads, values, {});
  EXPECT_EQ(values[0], 42)
      << "clean line must be re-served from the relocated inner memory";
  EXPECT_EQ(cached.stats().invalidations, 1u);

  // The dirty line is the only up-to-date copy — it must NOT have been
  // invalidated by the relocation stamp.
  reads = {VarId(1)};
  values.assign(1, 0);
  cached.step(reads, values, {});
  EXPECT_EQ(values[0], 77);
  EXPECT_EQ(cached.stats().invalidations, 1u);

  if (obs::kEnabled) {
    sink.journal.flush();
    bool saw_scrub_invalidate = false;
    for (const auto& event : sink.journal.events()) {
      if (event.kind == obs::EventKind::kCacheInvalidateScrub) {
        saw_scrub_invalidate = true;
        EXPECT_EQ(event.entity, 0u);
      }
    }
    EXPECT_TRUE(saw_scrub_invalidate);
  }
}

// ----- pipeline: worker-count invariance with the cache enabled -------

void expect_runs_identical(const core::TraceRunResult& a,
                           const core::TraceRunResult& b,
                           const char* what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.time.count(), b.time.count()) << what;
  EXPECT_DOUBLE_EQ(a.time.sum(), b.time.sum()) << what;
  EXPECT_DOUBLE_EQ(a.work.sum(), b.work.sum()) << what;
  EXPECT_DOUBLE_EQ(a.max_queue.max(), b.max_queue.max()) << what;
  EXPECT_EQ(a.reliability.reads_served, b.reliability.reads_served) << what;
  EXPECT_EQ(a.reliability.wrong_reads, b.reliability.wrong_reads) << what;
  EXPECT_EQ(a.reliability.faults_masked, b.reliability.faults_masked)
      << what;
  EXPECT_EQ(a.reliability.uncorrectable, b.reliability.uncorrectable)
      << what;
}

struct WorkerOverrideGuard {
  ~WorkerOverrideGuard() { util::set_parallel_workers_override(0); }
};

// Results AND deterministic obs snapshots of a cached group-parallel
// pipeline run must be bit-identical at 1 worker and at many, including
// the cache's own counters and invalidation events.
TEST(CachedMemory, GroupParallelCachedPipelineBitIdenticalAcrossWorkers) {
  WorkerOverrideGuard guard;
  core::SchemeSpec spec{
      .kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3};
  spec.backend = pram::ServeBackend::kGroupParallel;
  spec.cache_lines = 64;
  core::SimulationPipeline pipeline(spec);
  const faults::FaultSpec fault_spec{.seed = 41,
                                     .module_kill_rate = 0.25,
                                     .onset_min = 2,
                                     .onset_max = 8};
  core::StressOptions options{.steps_per_family = 6, .seed = 13,
                              .trials = 2};
  options.families = {pram::TraceFamily::kZipfian,
                      pram::TraceFamily::kWorkingSet};
  options.trace.zipf_exponent = 1.1;
  options.scrub_interval = 2;
  options.scrub_budget = 64;
  options.obs_enabled = true;

  obs::SnapshotOptions snapshot;
  snapshot.include_timings = false;

  util::set_parallel_workers_override(1);
  auto serial = pipeline.run_with_faults(fault_spec, options);
  util::set_parallel_workers_override(4);
  auto parallel = pipeline.run_with_faults(fault_spec, options);
  util::set_parallel_workers_override(0);

  EXPECT_GT(serial.reliability.reads_served, 0u);
  EXPECT_EQ(serial.reliability.wrong_reads, 0u);
  expect_runs_identical(serial, parallel, "cached kDmmpc");
  if (obs::kEnabled) {
    const std::string a = obs::to_json(serial.obs, snapshot);
    const std::string b = obs::to_json(parallel.obs, snapshot);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"cache.hits\""), std::string::npos);
  }
}

// Durability regression: snapshot() must write DIRTY LINES BACK to the
// inner memory BEFORE serializing it — the original ordering serialized
// the backing state first and produced checkpoints with stale words
// under every dirty line. The restored cache starts cold with a fully
// up-to-date backing image.
TEST(CachedMemory, SnapshotFlushesDirtyLinesBeforeSerializing) {
  auto flat = std::make_unique<pram::FlatMemory>(8);
  pram::FlatMemory* inner = flat.get();
  cache::CachedMemory cached(std::move(flat),
                             cache::CacheConfig{.capacity = 4});

  std::vector<VarId> no_reads;
  std::vector<pram::Word> no_values;
  const std::vector<pram::VarWrite> writes = {{VarId(0), 10},
                                              {VarId(1), 11},
                                              {VarId(5), 55}};
  cached.step(no_reads, no_values, writes);
  // The lines are dirty: the inner memory is stale by design...
  ASSERT_EQ(inner->peek(VarId(0)), 0);
  ASSERT_EQ(cached.stats().writebacks, 0u);

  // ...but serialization must flush first, so the checkpoint image (and
  // the inner memory it nests) carries the committed values.
  pram::BufferSink sink;
  cached.snapshot(sink);
  const auto bytes = sink.take();
  EXPECT_EQ(inner->peek(VarId(0)), 10);
  EXPECT_EQ(inner->peek(VarId(1)), 11);
  EXPECT_EQ(inner->peek(VarId(5)), 55);
  EXPECT_EQ(cached.stats().writebacks, 3u);
  // Flushing is not eviction: the lines stay resident (now clean).
  EXPECT_EQ(cached.occupancy(), 3u);
  EXPECT_EQ(cached.peek(VarId(5)), 55);

  // Restore into a fresh wrapper: values correct, cache cold.
  cache::CachedMemory restored(std::make_unique<pram::FlatMemory>(8),
                               cache::CacheConfig{.capacity = 4});
  pram::BufferSource source(bytes);
  ASSERT_TRUE(restored.restore(source));
  ASSERT_TRUE(source.exhausted());
  EXPECT_EQ(restored.occupancy(), 0u);
  EXPECT_EQ(restored.peek(VarId(0)), 10);
  EXPECT_EQ(restored.peek(VarId(1)), 11);
  EXPECT_EQ(restored.peek(VarId(5)), 55);
  EXPECT_EQ(restored.peek(VarId(2)), 0);
}

}  // namespace
}  // namespace pramsim
