// Tests for the butterfly / expander substrates and the Ranade / HB
// context engines built on them.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/context_engines.hpp"
#include "majority/majority_memory.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "network/butterfly.hpp"
#include "network/expander.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

// ------------------------------ butterfly -------------------------------

TEST(Butterfly, ShapeCounts) {
  const auto shape = net::butterfly(8);
  EXPECT_EQ(shape.rows, 8u);
  EXPECT_EQ(shape.levels, 3u);
  EXPECT_EQ(shape.nodes(), 32u);
  EXPECT_EQ(shape.edges(), 48u);
  EXPECT_EQ(shape.max_degree(), 4u);
}

TEST(Butterfly, BitFixingPathReachesDestination) {
  const auto shape = net::butterfly(16);
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = static_cast<std::uint32_t>(rng.below(16));
    const auto t = static_cast<std::uint32_t>(rng.below(16));
    const auto rows = net::bit_fixing_rows(shape, s, t);
    ASSERT_EQ(rows.size(), shape.levels + 1);
    EXPECT_EQ(rows.front(), s);
    EXPECT_EQ(rows.back(), t);
    // Each hop changes at most the bit of its level.
    for (std::uint32_t level = 0; level < shape.levels; ++level) {
      const auto diff = rows[level] ^ rows[level + 1];
      EXPECT_TRUE(diff == 0 || diff == (1U << level));
    }
  }
}

TEST(Butterfly, PermutationCongestionIsModest) {
  const auto shape = net::butterfly(256);
  util::Rng rng(7);
  const auto perm = rng.permutation(256);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t i = 0; i < 256; ++i) {
    pairs.emplace_back(i, perm[i]);
  }
  const auto load = net::route_congestion(shape, pairs);
  EXPECT_EQ(load.dilation, 8u);
  // Random permutations congest O(log n)-ish, far below n.
  EXPECT_LE(load.max_congestion, 32u);
  EXPECT_GE(load.max_congestion, 1u);
}

TEST(Butterfly, SingleDestinationCongestsFully) {
  const auto shape = net::butterfly(64);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t i = 0; i < 64; ++i) {
    pairs.emplace_back(i, 9u);  // everyone to row 9
  }
  const auto load = net::route_congestion(shape, pairs);
  // The final edge into row 9 carries half the packets at least.
  EXPECT_GE(load.max_congestion, 32u);
}

// ------------------------------- expander -------------------------------

TEST(Expander, RegularAndConnected) {
  net::RegularGraph g(256, 6, 11);
  EXPECT_EQ(g.vertices(), 256u);
  for (std::uint32_t v = 0; v < 256; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 6u);
    // simple graph: no loops, no multi-edges
    std::set<std::uint32_t> distinct(g.neighbors(v).begin(),
                                     g.neighbors(v).end());
    EXPECT_EQ(distinct.size(), 6u);
    EXPECT_EQ(distinct.count(v), 0u);
  }
  EXPECT_TRUE(g.connected());
}

TEST(Expander, DiameterLogarithmic) {
  for (const std::uint32_t n : {64u, 256u, 1024u}) {
    net::RegularGraph g(n, 6, 5);
    ASSERT_TRUE(g.connected());
    const auto diam = g.diameter();
    // Random 6-regular graphs have diameter ~ log_5 n + O(1).
    EXPECT_LE(diam, 2u * static_cast<std::uint32_t>(util::ilog2_ceil(n)));
    EXPECT_GE(diam, 2u);
  }
}

TEST(Expander, SpectralGapNearRamanujan) {
  net::RegularGraph g(512, 8, 3);
  const double l2 = g.lambda2();
  // Ramanujan bound: 2*sqrt(d-1)/d = 2*sqrt(7)/8 ~ 0.661. Random regular
  // graphs land near it; we allow generous slack but demand a real gap.
  EXPECT_LT(l2, 0.85);
  EXPECT_GT(l2, 0.3);
}

TEST(Expander, EccentricityBoundsDiameter) {
  net::RegularGraph g(128, 4, 9);
  ASSERT_TRUE(g.connected());
  EXPECT_LE(g.eccentricity(0), g.diameter());
}

// ---------------------------- Ranade engine -----------------------------

TEST(RanadeEngine, ExpectedTimeLogarithmic) {
  const std::uint32_t n = 256;
  auto map = std::shared_ptr<memmap::MemoryMap>(
      memmap::make_single_copy_map(static_cast<std::uint64_t>(n) * n, n, 5));
  core::RanadeButterflyEngine engine(map, n);
  util::Rng rng(13);
  util::RunningStats times;
  for (int trial = 0; trial < 20; ++trial) {
    const auto vars =
        rng.sample_without_replacement(static_cast<std::uint64_t>(n) * n, n);
    std::vector<majority::VarRequest> reqs;
    for (std::uint32_t i = 0; i < n; ++i) {
      reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
    }
    times.add(static_cast<double>(engine.run_step(reqs).time));
  }
  // 2*(dilation + congestion - 1) with dilation = 8 and congestion
  // O(log n): comfortably below 100, far below n.
  EXPECT_LT(times.mean(), 100.0);
  EXPECT_GE(times.mean(), 16.0);
}

TEST(RanadeEngine, AdversarialBatchBlowsUp) {
  // Deterministic failure mode: all requests to variables hashing to one
  // row serialize — no worst-case guarantee, unlike the HP schemes.
  const std::uint32_t n = 128;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
  auto map = std::shared_ptr<memmap::MemoryMap>(
      memmap::make_single_copy_map(m, n, 5));
  core::RanadeButterflyEngine engine(map, n);
  // Find many variables in one module (the known-hash adversary).
  std::vector<ModuleId> copy(1);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t v = 0; v < m && reqs.size() < 64; ++v) {
    map->copies_into(VarId(v), copy);
    if (copy[0].value() == 3) {
      reqs.push_back({VarId(v), ProcId(static_cast<std::uint32_t>(
                                     reqs.size()))});
    }
  }
  ASSERT_GE(reqs.size(), 32u);
  const auto result = engine.run_step(reqs);
  EXPECT_GE(result.time, 2 * reqs.size());  // fully serialized
}

// ------------------------------ HB engine -------------------------------

TEST(HbEngine, CompletesWithLogOverLoglogRedundancy) {
  const std::uint32_t n = 256;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
  const auto c = core::hb_c(m);
  const auto r = 2 * c - 1;
  EXPECT_GE(c, 2u);
  EXPECT_LE(r, 15u);  // log m/loglog m at m=2^16: 16/4 = 4 -> r = 7
  auto map = std::make_shared<memmap::HashedMap>(m, n, r, 7);
  majority::SchedulerConfig cfg;
  cfg.c = c;
  cfg.cluster_size = r;
  cfg.n_processors = n;
  core::HbExpanderEngine engine(map, cfg, /*graph_degree=*/6,
                                /*graph_seed=*/3);
  EXPECT_GT(engine.cycles_per_round(), 1u);
  util::Rng rng(17);
  const auto vars = rng.sample_without_replacement(m, n);
  std::vector<majority::VarRequest> reqs;
  for (std::uint32_t i = 0; i < n; ++i) {
    reqs.push_back({VarId(static_cast<std::uint32_t>(vars[i])), ProcId(i)});
  }
  const auto result = engine.run_step(reqs);
  for (const auto mask : result.accessed_mask) {
    EXPECT_GE(static_cast<std::uint32_t>(__builtin_popcountll(mask)), c);
  }
  EXPECT_EQ(result.time % engine.cycles_per_round(), 0u);
}

TEST(HbEngine, RedundancyBelowUwAboveHp) {
  // The paper's §1 ordering: HB's Theta(log m/loglog m) sits between
  // UW's Theta(log m) and HP's Theta(1).
  const std::uint64_t m = 1ULL << 24;
  const auto r_hb = 2 * core::hb_c(m) - 1;
  const auto r_uw = 2 * memmap::uw_c(m, 4.0) - 1;
  const auto r_hp = memmap::lemma2_redundancy(4.0, 2.0, 1.0);
  EXPECT_LT(r_hb, r_uw);
  EXPECT_GT(r_hb, r_hp);
}

TEST(HbEngine, WorksAsMajorityMemory) {
  const std::uint32_t n = 64;
  const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
  const auto c = core::hb_c(m);
  auto map = std::make_shared<memmap::HashedMap>(m, n, 2 * c - 1, 9);
  majority::SchedulerConfig cfg;
  cfg.c = c;
  cfg.cluster_size = 2 * c - 1;
  cfg.n_processors = n;
  majority::MajorityMemory memory(
      std::make_unique<core::HbExpanderEngine>(map, cfg, 6, 5));
  const pram::VarWrite writes[] = {{VarId(42), 777}};
  memory.step({}, {}, writes);
  const VarId reads[] = {VarId(42)};
  pram::Word values[1];
  memory.step(reads, values, {});
  EXPECT_EQ(values[0], 777);
}

}  // namespace
}  // namespace pramsim
