// Tests for memory maps, the Lemma 2 / Theorem 1 parameter calculus, the
// bad-map union bound, and the expansion verifier.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "memmap/params.hpp"
#include "util/math.hpp"

namespace pramsim::memmap {
namespace {

// ----------------------------------------------------------- maps -------

TEST(TableMap, CopiesAreDistinctModules) {
  TableMap map(1000, 64, 7, /*seed=*/1);
  for (std::uint32_t v = 0; v < 1000; ++v) {
    const auto copies = map.copies(VarId(v));
    ASSERT_EQ(copies.size(), 7u);
    std::set<std::uint32_t> mods;
    for (const auto mod : copies) {
      ASSERT_LT(mod.value(), 64u);
      mods.insert(mod.value());
    }
    EXPECT_EQ(mods.size(), 7u) << "var " << v;
  }
}

TEST(TableMap, DeterministicGivenSeed) {
  TableMap a(500, 32, 5, 42);
  TableMap b(500, 32, 5, 42);
  for (std::uint32_t v = 0; v < 500; ++v) {
    EXPECT_EQ(a.copies(VarId(v)), b.copies(VarId(v)));
  }
}

TEST(TableMap, DifferentSeedsDiffer) {
  TableMap a(500, 256, 5, 1);
  TableMap b(500, 256, 5, 2);
  int identical = 0;
  for (std::uint32_t v = 0; v < 500; ++v) {
    identical += a.copies(VarId(v)) == b.copies(VarId(v)) ? 1 : 0;
  }
  EXPECT_LT(identical, 5);
}

TEST(TableMap, LoadAccountingConsistent) {
  TableMap map(2000, 128, 3, 7);
  std::uint64_t total = 0;
  for (std::uint32_t mod = 0; mod < 128; ++mod) {
    total += map.module_load(ModuleId(mod));
  }
  EXPECT_EQ(total, 2000u * 3u);
  EXPECT_GE(map.max_module_load(), (2000u * 3u) / 128u);
  EXPECT_GE(map.load_imbalance(), 1.0);
  EXPECT_LT(map.load_imbalance(), 3.0);  // random placement is near-balanced
}

TEST(TableMap, FullRedundancyEqualsModules) {
  // r == M forces every variable into every module.
  TableMap map(50, 5, 5, 3);
  for (std::uint32_t v = 0; v < 50; ++v) {
    const auto copies = map.copies(VarId(v));
    std::set<std::uint32_t> mods;
    for (const auto c : copies) {
      mods.insert(c.value());
    }
    EXPECT_EQ(mods.size(), 5u);
  }
}

TEST(HashedMap, CopiesDistinctAndDeterministic) {
  HashedMap map(1'000'000, 4096, 7, 99);
  for (std::uint32_t v = 0; v < 2000; ++v) {
    const auto a = map.copies(VarId(v));
    const auto b = map.copies(VarId(v));
    EXPECT_EQ(a, b);
    std::set<std::uint32_t> mods;
    for (const auto mod : a) {
      ASSERT_LT(mod.value(), 4096u);
      mods.insert(mod.value());
    }
    EXPECT_EQ(mods.size(), 7u);
  }
}

TEST(HashedMap, SpreadsAcrossModules) {
  HashedMap map(100'000, 512, 7, 5);
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t v = 0; v < 2000; ++v) {
    for (const auto mod : map.copies(VarId(v))) {
      seen.insert(mod.value());
    }
  }
  // 14000 copy placements over 512 modules should touch nearly all.
  EXPECT_GT(seen.size(), 500u);
}

TEST(SingleCopyMap, HasRedundancyOne) {
  const auto map = make_single_copy_map(10'000, 64, 11);
  EXPECT_EQ(map->redundancy(), 1u);
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t v = 0; v < 1000; ++v) {
    const auto copies = map->copies(VarId(v));
    ASSERT_EQ(copies.size(), 1u);
    seen.insert(copies[0].value());
  }
  EXPECT_GT(seen.size(), 55u);
}

// ------------------------------------------------------ parameters ------

TEST(Params, Lemma2MinCMatchesHandComputedValues) {
  // b=4, k=2, eps=1: bound = max((8-1)/2, 3/2) = 3.5 -> c = 4.
  EXPECT_EQ(lemma2_min_c(4.0, 2.0, 1.0), 4u);
  // b=8, k=2, eps=1: bound = max((16-1)/6, 7/6) = 2.5 -> c = 3.
  EXPECT_EQ(lemma2_min_c(8.0, 2.0, 1.0), 3u);
  // b=4, k=3, eps=1: (12-1)/2 = 5.5 -> c = 6.
  EXPECT_EQ(lemma2_min_c(4.0, 3.0, 1.0), 6u);
  // Exact-integer bound must round strictly up: pick params where
  // (bk-eps)/(eps(b-2)) = 3 exactly: b=4, eps=1, k=(3*2+1)/4 ... use
  // b=3, k=1, eps=1: (3-1)/1 = 2 - bound2 = 2 -> strict > 2 -> c = 3.
  EXPECT_EQ(lemma2_min_c(3.0, 1.0, 1.0), 3u);
}

TEST(Params, Lemma2RedundancyIsConstantInN) {
  // The headline: c (hence r) depends only on (b, k, eps), never on n.
  const auto r = lemma2_redundancy(4.0, 2.0, 1.0);
  EXPECT_EQ(r, 7u);
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u, 65536u}) {
    const auto p = derive_params(n, 2.0, 1.0, 4.0);
    EXPECT_EQ(p.r, r) << "n=" << n;
  }
}

TEST(Params, Lemma2MonotoneInGranularity) {
  // Larger eps (finer granularity, more modules) => no more redundancy.
  std::uint32_t prev = ~0u;
  for (double eps : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    const auto c = lemma2_min_c(4.0, 2.0, eps);
    EXPECT_LE(c, prev) << "eps=" << eps;
    prev = c;
  }
}

TEST(Params, UwRedundancyGrowsLogarithmically) {
  const auto r64 = uw_redundancy(1ULL << 12, 4.0);   // m = 4096
  const auto r2 = uw_redundancy(1ULL << 24, 4.0);    // m = 16M
  EXPECT_GT(r2, r64);
  // c = ceil(log_4 m): log_4(2^12) = 6, log_4(2^24) = 12.
  EXPECT_EQ(uw_c(1ULL << 12, 4.0), 6u);
  EXPECT_EQ(uw_c(1ULL << 24, 4.0), 12u);
}

TEST(Params, Theorem1CollapsesWithGranularity) {
  // m = n^2. With M = n (one module per processor, the MPC regime) a fast
  // simulation (small h) forces many updated copies; with M = n^2 modules
  // the same counting argument collapses to ~1 copy. The contrast is the
  // paper's central claim. (The counting bound is ~half the closed form
  // and is tightest for small h, so we probe h = 2.)
  const double n = 1 << 20;
  const double m = n * n;
  const double h = 2.0;
  const auto p_coarse = theorem1_min_p(n, /*M=*/n, m, h);
  const auto p_fine = theorem1_min_p(n, /*M=*/n * n, m, h);
  EXPECT_GT(p_coarse, p_fine);
  EXPECT_GE(p_coarse, 4u);  // grows like log n / (eps log n + log h)
  EXPECT_LE(p_fine, 2u);    // essentially constant
}

TEST(Params, Theorem1ClosedFormMatchesShape) {
  // Closed form (k-1)logn/(eps logn + log h) at k=2, eps=1, h=log^2 n
  // approaches 1 for large n.
  const double v = theorem1_closed_form(1 << 20, 2.0, 1.0, 400.0);
  EXPECT_GT(v, 0.5);
  EXPECT_LT(v, 1.5);
  // eps -> 0 (the MPC regime) blows the bound up to ~log n / log h.
  const double coarse = theorem1_closed_form(1 << 20, 2.0, 0.01, 400.0);
  EXPECT_GT(coarse, 2.0);
}

TEST(Params, Theorem1MinPMonotoneInTime) {
  // Allowing more time h weakens the required redundancy.
  const double n = 1 << 14;
  const double m = n * n;
  const double M = std::pow(n, 1.5);
  std::uint32_t prev = ~0u;
  for (double h : {2.0, 8.0, 64.0, 512.0}) {
    const auto p = theorem1_min_p(n, M, m, h);
    EXPECT_LE(p, prev) << "h=" << h;
    prev = p;
  }
}

TEST(Params, BadMapBoundTransitionsAtLemma2Threshold) {
  // At c safely above the Lemma 2 threshold the union bound is tiny; at
  // c = 2 (below threshold for k=2, eps=1, b=4 where c_min=4) it is
  // vacuous (>= 0) or at least dramatically larger.
  const double n = 4096;
  const double m = n * n;
  const double M = n * n;
  const double good = bad_map_log2_union_bound(n, m, M, 6, 4.0);
  const double bad = bad_map_log2_union_bound(n, m, M, 2, 4.0);
  EXPECT_LT(good, -20.0);
  EXPECT_GT(bad, good + 20.0);
}

TEST(Params, BadMapBoundShrinksWithN) {
  // For fixed constants, the bad-map fraction vanishes as n grows: maps
  // exist "for n sufficiently large" (Lemma 2's phrasing).
  double prev = 1e9;
  for (double n : {256.0, 1024.0, 4096.0, 16384.0}) {
    const double v = bad_map_log2_union_bound(n, n * n, n * n, 5, 4.0);
    EXPECT_LT(v, prev) << "n=" << n;
    prev = v;
  }
}

TEST(Params, DeriveParamsProducesConsistentBundle) {
  const auto p = derive_params(256, 2.0, 1.0, 4.0);
  EXPECT_EQ(p.n, 256u);
  EXPECT_EQ(p.m, 65536u);
  EXPECT_EQ(p.n_modules, 65536u);
  EXPECT_EQ(p.c, 4u);
  EXPECT_EQ(p.r, 7u);
  EXPECT_EQ(p.cluster, p.r);
  EXPECT_NEAR(p.granularity, 7.0, 1e-9);
}

TEST(Params, DeriveParamsClampsModulesToVars) {
  // eps so large M would exceed m: clamp to m.
  const auto p = derive_params(64, 2.0, 3.0, 4.0);
  EXPECT_EQ(p.n_modules, p.m);
}

// ------------------------------------------------------- expansion ------

TEST(Expansion, GreedyNeverBeatsExactMinimum) {
  // The greedy adversary reports an upper bound on the true minimum
  // coverage; verify against the exact minimizer on tiny instances.
  TableMap map(64, 16, 5, 13);
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<VarId> vars;
    const auto picks = rng.sample_without_replacement(64, 4);
    vars.reserve(picks.size());
    for (const auto p : picks) {
      vars.emplace_back(static_cast<std::uint32_t>(p));
    }
    const auto exact = exact_min_coverage(map, 3, vars);
    // Reconstruct greedy on the same exact set by running measure with
    // q = vars.size() many trials won't hit the same set; instead check
    // the invariant directly: exact <= any adversarial selection, and
    // exact >= 3 (one variable alone occupies >= c distinct modules... at
    // least ceil(c * 1 / something)). Minimal sanity: coverage >= c? No -
    // copies of distinct vars can overlap, but a single variable's c kept
    // copies are in c distinct modules, so exact >= c.
    EXPECT_GE(exact, 3u);
    EXPECT_LE(exact, 16u);
  }
}

TEST(Expansion, SingleVariableCoversExactlyC) {
  TableMap map(10, 32, 7, 5);
  const std::vector<VarId> vars = {VarId(3)};
  EXPECT_EQ(exact_min_coverage(map, 4, vars), 4u);
}

TEST(Expansion, MeasureReportsSaneBounds) {
  const auto params = derive_params(256, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 17);
  const std::uint64_t q = params.n / params.r;
  const auto res = measure_expansion(map, params.c, q, 20, 23);
  EXPECT_EQ(res.q, q);
  EXPECT_EQ(res.redundancy, params.r);
  // Coverage can't exceed the number of kept copies (c per var).
  EXPECT_LE(res.min_distinct, static_cast<std::uint64_t>(params.c) * q);
  EXPECT_GE(res.min_distinct, 1u);
  // Adversarial coverage <= random coverage (it is a minimizer).
  EXPECT_LE(res.min_distinct, res.min_distinct_random);
  EXPECT_GE(res.mean_distinct, static_cast<double>(res.min_distinct));
}

TEST(Expansion, Lemma2PropertyHoldsOnRandomMapAtPrescribedC) {
  // The paper's parameters must yield ratio >= 1 on sampled live sets:
  // this is the Lemma 2 reproduction in miniature (bench L2 scales it up).
  const auto params = derive_params(512, 2.0, 1.0, 4.0);
  HashedMap map(params.m, params.n_modules, params.r, 29);
  const std::uint64_t q = params.n / params.r;
  const auto res = measure_expansion(map, params.c, q, 30, 31);
  EXPECT_GE(res.ratio_vs_bound(params.b), 1.0)
      << "expansion property violated: " << res.min_distinct << " modules for q=" << q;
}

TEST(Expansion, AdversarialBatchDistinctVars) {
  TableMap map(4096, 64, 7, 3);
  const auto batch = adversarial_batch(map, 128, 5);
  ASSERT_EQ(batch.size(), 128u);
  std::set<std::uint32_t> vars;
  for (const auto v : batch) {
    ASSERT_LT(v.index(), 4096u);
    vars.insert(v.value());
  }
  EXPECT_EQ(vars.size(), 128u);
}

TEST(Expansion, AdversarialBatchConcentratesLoad) {
  // The adversarial batch should produce a hotter max module load than a
  // random batch of the same size.
  TableMap map(1 << 16, 256, 7, 77);
  const auto batch = adversarial_batch(map, 256, 5);
  util::Rng rng(6);
  const auto random_vars = rng.sample_without_replacement(1 << 16, 256);

  auto max_load = [&](const std::vector<VarId>& vars) {
    std::vector<std::uint32_t> load(256, 0);
    std::uint32_t best = 0;
    for (const auto v : vars) {
      for (const auto mod : map.copies(v)) {
        best = std::max(best, ++load[mod.index()]);
      }
    }
    return best;
  };
  std::vector<VarId> random_batch;
  random_batch.reserve(random_vars.size());
  for (const auto v : random_vars) {
    random_batch.emplace_back(static_cast<std::uint32_t>(v));
  }
  EXPECT_GE(max_load(batch), max_load(random_batch));
}

}  // namespace
}  // namespace pramsim::memmap
