// Cross-module integration tests: every memory organization in the
// repository (ideal, majority-replicated on DMMPC/MPC/2DMOT/crossbar,
// IDA blocks, MV hashing) must execute the same unmodified P-RAM
// programs with bit-identical shared-memory results; plus multi-program
// sequences on one machine state and cost-model sanity across schemes.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/schemes.hpp"
#include "hashing/mv_memory.hpp"
#include "ida/ida_memory.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

using pram::ConflictPolicy;
using pram::Machine;
using pram::MachineConfig;
using pram::Word;

/// Factory for every MemorySystem implementation, by name. Every scheme
/// kind (IDA and hashing included) comes out of the one unified factory;
/// only the ideal flat memory is special.
std::unique_ptr<pram::MemorySystem> make_memory_by_name(
    const std::string& name, std::uint32_t n, std::uint64_t m_required) {
  if (name == "flat") {
    return std::make_unique<pram::FlatMemory>(m_required);
  }
  static const std::map<std::string, core::SchemeKind> kinds = {
      {"hp_mot", core::SchemeKind::kHpMot},
      {"crossbar", core::SchemeKind::kCrossbar},
      {"lpp", core::SchemeKind::kLppMot},
      {"dmmpc", core::SchemeKind::kDmmpc},
      {"uw_mpc", core::SchemeKind::kUwMpc},
      {"hb_expander", core::SchemeKind::kHbExpander},
      {"ranade", core::SchemeKind::kRanade},
      {"ida", core::SchemeKind::kIda},
      {"mv", core::SchemeKind::kHashed},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    ADD_FAILURE() << "unknown memory " << name;
    return nullptr;
  }
  return core::make_memory(
      {.kind = it->second, .n = n, .seed = 7, .min_vars = m_required});
}

const std::vector<std::string>& all_memories() {
  static const std::vector<std::string> names = {
      "flat",   "hp_mot",      "crossbar", "lpp", "dmmpc",
      "uw_mpc", "hb_expander", "ranade",   "ida", "mv"};
  return names;
}

class AllMemoriesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMemoriesTest, ReduceSumMatchesIdeal) {
  const std::uint32_t n = 16;
  auto ideal_spec = pram::programs::reduce_sum(n);
  auto sim_spec = pram::programs::reduce_sum(n);
  MachineConfig cfg{.n_processors = n,
                    .m_shared_cells = ideal_spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine ideal(cfg, std::move(ideal_spec.program));
  Machine simulated(
      cfg, std::move(sim_spec.program),
      make_memory_by_name(GetParam(), n, ideal_spec.m_required));
  util::Rng rng(31);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<Word>(rng.below(500));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run().completed()) << GetParam();
  EXPECT_EQ(ideal.shared(VarId(0)), simulated.shared(VarId(0))) << GetParam();
}

TEST_P(AllMemoriesTest, ListRankMatchesIdeal) {
  const std::uint32_t n = 16;
  auto ideal_spec = pram::programs::list_rank(n);
  auto sim_spec = pram::programs::list_rank(n);
  MachineConfig cfg{.n_processors = n,
                    .m_shared_cells = ideal_spec.m_required,
                    .policy = ConflictPolicy::kCrew};
  Machine ideal(cfg, std::move(ideal_spec.program));
  Machine simulated(
      cfg, std::move(sim_spec.program),
      make_memory_by_name(GetParam(), n, ideal_spec.m_required));
  util::Rng rng(37);
  const auto order = rng.permutation(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    const auto node = order[k];
    const auto succ = k + 1 < n ? order[k + 1] : node;
    for (auto* machine : {&ideal, &simulated}) {
      machine->poke_shared(VarId(node), succ);
      machine->poke_shared(VarId(n + node), k + 1 < n ? 1 : 0);
    }
  }
  ASSERT_TRUE(ideal.run().completed());
  ASSERT_TRUE(simulated.run().completed()) << GetParam();
  for (std::uint32_t v = 0; v < 2 * n; ++v) {
    EXPECT_EQ(ideal.shared(VarId(v)), simulated.shared(VarId(v)))
        << GetParam() << " var " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Memories, AllMemoriesTest,
                         ::testing::ValuesIn(all_memories()),
                         [](const auto& param_info) { return param_info.param; });

TEST(Integration, MultiProgramSequenceSharesMemoryState) {
  // Broadcast a value, then prefix-sum over the broadcast result, on one
  // persistent HP-2DMOT memory: the memory must carry state across
  // machine instances (two different programs).
  const std::uint32_t n = 16;
  auto bc = pram::programs::broadcast(n);
  auto ps = pram::programs::prefix_sum(n);
  const std::uint64_t m_needed = std::max(bc.m_required, ps.m_required);

  auto memory = core::make_memory({.kind = core::SchemeKind::kHpMot,
                                   .n = n,
                                   .seed = 3,
                                   .min_vars = m_needed});
  auto* memory_raw = memory.get();

  MachineConfig cfg{.n_processors = n,
                    .m_shared_cells = m_needed,
                    .policy = ConflictPolicy::kErew};
  {
    Machine machine(cfg, std::move(bc.program), std::move(memory));
    machine.poke_shared(VarId(0), 3);
    ASSERT_TRUE(machine.run().completed());
    // Hand the memory back for the second program. (Machine owns it; we
    // rebuild a second memory identically instead — but verify the first
    // pass produced the broadcast.)
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_EQ(machine.shared(VarId(i)), 3);
    }
    (void)memory_raw;
  }
  // Second stage: fresh machine, fresh memory, seeded with the broadcast
  // result; prefix-sum of all 3s is 3, 6, 9, ...
  auto memory2 = core::make_memory({.kind = core::SchemeKind::kHpMot,
                                    .n = n,
                                    .seed = 3,
                                    .min_vars = m_needed});
  Machine machine2(cfg, std::move(ps.program), std::move(memory2));
  for (std::uint32_t i = 0; i < n; ++i) {
    machine2.poke_shared(VarId(i), 3);
  }
  ASSERT_TRUE(machine2.run().completed());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(machine2.shared(VarId(i)), static_cast<Word>(3 * (i + 1)));
  }
}

TEST(Integration, CostOrderingAcrossSchemes) {
  // Structural sanity of the cost models on the same program: network
  // machines charge more than round-based machines; every simulating
  // machine charges at least the ideal's step count.
  const std::uint32_t n = 16;
  std::map<std::string, std::uint64_t> cost;
  for (const auto& name :
       {std::string("flat"), std::string("dmmpc"), std::string("hp_mot")}) {
    auto spec = pram::programs::reduce_sum(n);
    MachineConfig cfg{.n_processors = n,
                      .m_shared_cells = spec.m_required,
                      .policy = ConflictPolicy::kErew};
    Machine machine(cfg, std::move(spec.program),
                    make_memory_by_name(name, n, spec.m_required));
    for (std::uint32_t i = 0; i < n; ++i) {
      machine.poke_shared(VarId(i), 1);
    }
    const auto run = machine.run();
    ASSERT_TRUE(run.completed()) << name;
    cost[name] = run.mem_time;
  }
  EXPECT_LT(cost["flat"], cost["dmmpc"]);
  EXPECT_LT(cost["dmmpc"], cost["hp_mot"]);
}

TEST(Integration, CrcwMaxProgramOnReplicatedMemory) {
  // CRCW-max semantics are resolved by the machine before the scheme
  // sees the write; the replicated store must commit the winner.
  const std::uint32_t n = 8;
  auto spec = pram::programs::pid_write();
  MachineConfig cfg{.n_processors = n,
                    .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrcwMax};
  Machine machine(cfg, std::move(spec.program),
                  core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                     .n = n,
                                     .seed = 4,
                                     .min_vars = spec.m_required}));
  ASSERT_TRUE(machine.run().completed());
  EXPECT_EQ(machine.shared(VarId(0)), static_cast<Word>(n - 1));
}

}  // namespace
}  // namespace pramsim
