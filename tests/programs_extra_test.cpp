// Tests for the extended program library (bitonic sort, broadcast) plus
// robustness fuzzing of the P-RAM machine itself: arbitrary well-formed
// programs must run, halt, fault, or hit the step cap — never crash or
// corrupt machine state.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/schemes.hpp"
#include "pram/machine.hpp"
#include "pram/programs.hpp"
#include "util/rng.hpp"

namespace pramsim::pram {
namespace {

class BitonicSortTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitonicSortTest, SortsRandomInput) {
  const std::uint32_t n = GetParam();
  auto spec = programs::bitonic_sort(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(6000 + n);
  std::vector<Word> input(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    input[i] = static_cast<Word>(rng.below(1000)) - 500;
    m.poke_shared(VarId(i), input[i]);
  }
  ASSERT_TRUE(m.run(4'000'000).completed()) << "n=" << n;
  std::sort(input.begin(), input.end());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.shared(VarId(i)), input[i]) << "i=" << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSortTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 64u,
                                           128u));

TEST(BitonicSort, AlreadySortedAndReversed) {
  for (const bool reversed : {false, true}) {
    const std::uint32_t n = 32;
    auto spec = programs::bitonic_sort(n);
    MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                      .policy = ConflictPolicy::kErew};
    Machine m(cfg, std::move(spec.program));
    for (std::uint32_t i = 0; i < n; ++i) {
      m.poke_shared(VarId(i), reversed ? static_cast<Word>(n - i)
                                       : static_cast<Word>(i));
    }
    ASSERT_TRUE(m.run(4'000'000).completed());
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      EXPECT_LE(m.shared(VarId(i)), m.shared(VarId(i + 1)));
    }
  }
}

TEST(BitonicSort, DuplicateValues) {
  const std::uint32_t n = 64;
  auto spec = programs::bitonic_sort(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(9);
  std::vector<Word> input(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    input[i] = static_cast<Word>(rng.below(4));  // heavy duplication
    m.poke_shared(VarId(i), input[i]);
  }
  ASSERT_TRUE(m.run(4'000'000).completed());
  std::sort(input.begin(), input.end());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.shared(VarId(i)), input[i]);
  }
}

class BroadcastTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BroadcastTest, FillsEveryCellWithSource) {
  const std::uint32_t n = GetParam();
  auto spec = programs::broadcast(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  m.poke_shared(VarId(0), 4242);
  ASSERT_TRUE(m.run().completed()) << "n=" << n;
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.shared(VarId(i)), 4242) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u,
                                           64u, 100u));

TEST(EndToEnd, BitonicSortOnHpMot) {
  const std::uint32_t n = 16;
  auto ideal_spec = programs::bitonic_sort(n);
  auto sim_spec = programs::bitonic_sort(n);
  MachineConfig cfg{.n_processors = n,
                    .m_shared_cells = ideal_spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine ideal(cfg, std::move(ideal_spec.program));
  Machine simulated(cfg, std::move(sim_spec.program),
                    core::make_memory({.kind = core::SchemeKind::kHpMot,
                                       .n = n,
                                       .seed = 12,
                                       .min_vars = sim_spec.m_required}));
  util::Rng rng(77);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto v = static_cast<Word>(rng.below(100));
    ideal.poke_shared(VarId(i), v);
    simulated.poke_shared(VarId(i), v);
  }
  ASSERT_TRUE(ideal.run(4'000'000).completed());
  ASSERT_TRUE(simulated.run(4'000'000).completed());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ideal.shared(VarId(i)), simulated.shared(VarId(i)));
  }
}

TEST(EndToEnd, BroadcastOnDmmpc) {
  const std::uint32_t n = 64;
  auto spec = programs::broadcast(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine simulated(cfg, std::move(spec.program),
                    core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                       .n = n,
                                       .seed = 13,
                                       .min_vars = spec.m_required}));
  simulated.poke_shared(VarId(0), -7);
  ASSERT_TRUE(simulated.run().completed());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(simulated.shared(VarId(i)), -7);
  }
}

// ----------------------------- machine fuzzing --------------------------

/// Generate a random but *structurally valid* program: every opcode's
/// register fields are in range and jump targets are inside the program,
/// so the only legal outcomes are completion, fault (div-by-zero, OOB
/// address, shift range), conflict violation, or step-cap exhaustion.
Program random_program(util::Rng& rng, std::size_t length) {
  Program p("fuzz");
  const auto reg = [&] { return static_cast<Reg>(rng.below(kNumRegisters)); };
  for (std::size_t i = 0; i < length; ++i) {
    switch (rng.below(12)) {
      case 0: p.loadi(reg(), static_cast<Word>(rng.below(64)) - 8); break;
      case 1: p.add(reg(), reg(), reg()); break;
      case 2: p.sub(reg(), reg(), reg()); break;
      case 3: p.mul(reg(), reg(), reg()); break;
      case 4: p.div(reg(), reg(), reg()); break;
      case 5: p.and_(reg(), reg(), reg()); break;
      case 6: p.slt(reg(), reg(), reg()); break;
      case 7: p.sread(reg(), reg(), static_cast<Word>(rng.below(8))); break;
      case 8: p.swrite(reg(), reg(), static_cast<Word>(rng.below(8))); break;
      case 9: p.lload(reg(), reg(), static_cast<Word>(rng.below(8))); break;
      case 10: p.lstore(reg(), reg(), static_cast<Word>(rng.below(8))); break;
      default: p.pid(reg()); break;
    }
  }
  p.halt();
  p.finalize();
  return p;
}

TEST(MachineFuzz, ArbitraryValidProgramsNeverCrash) {
  util::Rng rng(20250610);
  for (int trial = 0; trial < 200; ++trial) {
    auto prog = random_program(rng, 30);
    MachineConfig cfg{.n_processors = 4,
                      .m_shared_cells = 64,
                      .policy = ConflictPolicy::kCrcwArbitrary};
    Machine m(cfg, std::move(prog));
    const auto out = m.run(2000);
    // Any of these is a legal outcome; the point is we got here.
    EXPECT_TRUE(out.final_status == StepStatus::kAllHalted ||
                out.final_status == StepStatus::kFault ||
                out.final_status == StepStatus::kConflictViolation)
        << "trial " << trial;
  }
}

TEST(MachineFuzz, ErewPolicyFlagsFuzzedConflictsDeterministically) {
  // The same fuzzed program must produce the same outcome twice.
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto seed = rng.next();
    util::Rng ra(seed);
    util::Rng rb(seed);
    auto pa = random_program(ra, 20);
    auto pb = random_program(rb, 20);
    MachineConfig cfg{.n_processors = 8,
                      .m_shared_cells = 32,
                      .policy = ConflictPolicy::kErew};
    Machine ma(cfg, std::move(pa));
    Machine mb(cfg, std::move(pb));
    const auto oa = ma.run(500);
    const auto ob = mb.run(500);
    EXPECT_EQ(oa.final_status, ob.final_status) << "trial " << trial;
    EXPECT_EQ(oa.steps, ob.steps);
  }
}

TEST(MachineFuzz, SimulatedMachineMatchesIdealOnFuzzedPrograms) {
  // Differential fuzzing: any fuzz program that completes on the ideal
  // machine must complete with identical shared memory on the simulated
  // machine (the strongest end-to-end property we can state).
  util::Rng rng(424242);
  int compared = 0;
  for (int trial = 0; trial < 60 && compared < 12; ++trial) {
    const auto seed = rng.next();
    util::Rng ra(seed);
    util::Rng rb(seed);
    auto pa = random_program(ra, 25);
    auto pb = random_program(rb, 25);
    MachineConfig cfg{.n_processors = 8,
                      .m_shared_cells = 64,
                      .policy = ConflictPolicy::kCrcwPriority};
    Machine ideal(cfg, std::move(pa));
    if (ideal.run(500).final_status != StepStatus::kAllHalted) {
      continue;  // faulted or spun: nothing to compare
    }
    Machine simulated(cfg, std::move(pb),
                      core::make_memory({.kind = core::SchemeKind::kDmmpc,
                                         .n = 8,
                                         .seed = seed,
                                         .min_vars = 64}));
    ASSERT_EQ(simulated.run(500).final_status, StepStatus::kAllHalted)
        << "trial " << trial;
    for (std::uint32_t v = 0; v < 64; ++v) {
      ASSERT_EQ(ideal.shared(VarId(v)), simulated.shared(VarId(v)))
          << "trial " << trial << " var " << v;
    }
    ++compared;
  }
  EXPECT_GE(compared, 5) << "fuzzer found too few completing programs";
}

}  // namespace
}  // namespace pramsim::pram
