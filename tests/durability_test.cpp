// The durability subsystem's acceptance gate: WAL framing and group
// commit, torn-record tolerance at EVERY byte offset, checkpoint
// round-trips with torn-file fallback, restart recovery — and the
// deterministic kill-point crash matrix: schemes x kill points x seeds,
// each run killed at a seed-derived step, restarted from disk, and
// verified bit-for-bit against an uninterrupted reference run with zero
// lost committed-and-durable writes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "durability/checkpoint.hpp"
#include "durability/recovery.hpp"
#include "durability/wal.hpp"
#include "faults/fault_model.hpp"
#include "obs/sink.hpp"
#include "pram/memory_system.hpp"
#include "pram/snapshot.hpp"

namespace pramsim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("durability_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ----- WAL unit tests ------------------------------------------------------

TEST(Wal, RoundTripsEveryRecordKind) {
  const std::string dir = scratch_dir("wal_roundtrip");
  const std::string path = dir + "/wal.log";
  {
    durability::Wal wal({path, 1});
    const std::vector<pram::VarWrite> w1 = {{VarId(7), 70}, {VarId(9), -90}};
    wal.append_step(1, w1);
    wal.append_onset(2, 5);
    const std::vector<pram::VarWrite> w2 = {{VarId(3), 33}};
    wal.append_step(2, w2);
    wal.append_relocation(3, 12);
    wal.flush();
    EXPECT_EQ(wal.appended_records(), 4u);
    EXPECT_EQ(wal.durable_step(), 2u);
    EXPECT_GT(wal.file_bytes(), 0u);
  }
  const auto log = durability::read_wal(path);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.durable_step, 2u);
  ASSERT_EQ(log.records.size(), 4u);

  EXPECT_EQ(log.records[0].kind, durability::WalRecordKind::kStepCommit);
  EXPECT_EQ(log.records[0].step, 1u);
  ASSERT_EQ(log.records[0].writes.size(), 2u);
  EXPECT_EQ(log.records[0].writes[0].var, VarId(7));
  EXPECT_EQ(log.records[0].writes[0].value, 70);
  EXPECT_EQ(log.records[0].writes[1].value, -90);

  EXPECT_EQ(log.records[1].kind, durability::WalRecordKind::kFaultOnset);
  EXPECT_EQ(log.records[1].step, 2u);
  EXPECT_EQ(log.records[1].module, 5u);

  EXPECT_EQ(log.records[2].kind, durability::WalRecordKind::kStepCommit);
  ASSERT_EQ(log.records[2].writes.size(), 1u);
  EXPECT_EQ(log.records[2].writes[0].value, 33);

  EXPECT_EQ(log.records[3].kind,
            durability::WalRecordKind::kScrubRelocation);
  EXPECT_EQ(log.records[3].step, 3u);
  EXPECT_EQ(log.records[3].relocated, 12u);
}

TEST(Wal, MissingFileReadsAsEmptyUntornLog) {
  const auto log = durability::read_wal(scratch_dir("wal_none") + "/no.log");
  EXPECT_TRUE(log.records.empty());
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.durable_step, 0u);
}

// Group commit: the destructor does NOT flush, so a crash loses exactly
// the records appended since the last group-commit boundary — no more.
TEST(Wal, GroupCommitCrashLosesOnlyTheUnflushedTail) {
  const std::string dir = scratch_dir("wal_group");
  const std::string path = dir + "/wal.log";
  {
    durability::Wal wal({path, /*flush_interval=*/4});
    for (std::uint64_t step = 1; step <= 6; ++step) {
      const std::vector<pram::VarWrite> writes = {
          {VarId(static_cast<std::uint32_t>(step)),
           static_cast<pram::Word>(step * 10)}};
      wal.append_step(step, writes);
      wal.maybe_flush(step);
    }
    EXPECT_EQ(wal.durable_step(), 4u);  // flush fired at step 4 only
  }  // crash: steps 5 and 6 were buffered, never durable
  const auto log = durability::read_wal(path);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.durable_step, 4u);
  ASSERT_EQ(log.records.size(), 4u);
  EXPECT_EQ(log.records.back().step, 4u);
}

// The torn-final-record sweep: cut the file at EVERY byte offset inside
// the last record's span. Each cut must parse cleanly back to the last
// complete record — never a crash, never garbage replay.
TEST(Wal, TornFinalRecordRecoversToLastCompleteRecordAtEveryOffset) {
  const std::string dir = scratch_dir("wal_torn");
  const std::string path = dir + "/wal.log";
  durability::Wal::RecordSpan span;
  {
    durability::Wal wal({path, 1});
    const std::vector<pram::VarWrite> w1 = {{VarId(1), 11}, {VarId(2), 22}};
    wal.append_step(1, w1);
    const std::vector<pram::VarWrite> w2 = {{VarId(3), 33}};
    wal.append_step(2, w2);
    const std::vector<pram::VarWrite> w3 = {{VarId(4), 44}, {VarId(5), 55}};
    wal.append_step(3, w3);
    wal.flush();
    span = wal.last_record();
  }
  const auto full = durability::read_wal(path);
  ASSERT_EQ(full.records.size(), 3u);
  ASSERT_FALSE(full.torn_tail);
  ASSERT_GT(span.length, 0u);

  const std::string torn = dir + "/torn.log";
  for (std::uint64_t cut = span.offset; cut < span.offset + span.length;
       ++cut) {
    fs::copy_file(path, torn, fs::copy_options::overwrite_existing);
    fs::resize_file(torn, cut);
    const auto log = durability::read_wal(torn);
    ASSERT_EQ(log.records.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(log.durable_step, 2u) << "cut at byte " << cut;
    EXPECT_EQ(log.valid_bytes, span.offset) << "cut at byte " << cut;
    // Cutting exactly at the record boundary is a CLEAN two-record log;
    // any cut inside the final record is a detected torn tail.
    EXPECT_EQ(log.torn_tail, cut != span.offset) << "cut at byte " << cut;
  }
}

// Bit rot (not truncation): flipping any payload byte of the final
// record fails its CRC, and the reader stops at the last valid record.
TEST(Wal, CorruptFinalRecordIsRejectedByCrc) {
  const std::string dir = scratch_dir("wal_corrupt");
  const std::string path = dir + "/wal.log";
  durability::Wal::RecordSpan span;
  {
    durability::Wal wal({path, 1});
    const std::vector<pram::VarWrite> w1 = {{VarId(1), 11}};
    wal.append_step(1, w1);
    const std::vector<pram::VarWrite> w2 = {{VarId(2), 22}};
    wal.append_step(2, w2);
    wal.flush();
    span = wal.last_record();
  }
  // Flip one byte inside the final record's payload.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  const long pos = static_cast<long>(span.offset + span.length - 3);
  ASSERT_EQ(std::fseek(file, pos, SEEK_SET), 0);
  const int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(file, pos, SEEK_SET), 0);
  std::fputc(byte ^ 0xFF, file);
  std::fclose(file);

  const auto log = durability::read_wal(path);
  EXPECT_TRUE(log.torn_tail);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.durable_step, 1u);
}

TEST(Wal, TruncateThroughDropsOnlyCoveredRecords) {
  const std::string dir = scratch_dir("wal_trunc");
  const std::string path = dir + "/wal.log";
  durability::Wal wal({path, 1});
  for (std::uint64_t step = 1; step <= 6; ++step) {
    const std::vector<pram::VarWrite> writes = {
        {VarId(static_cast<std::uint32_t>(step)),
         static_cast<pram::Word>(step)}};
    wal.append_step(step, writes);
  }
  wal.truncate_through(4);
  const auto log = durability::read_wal(path);
  EXPECT_FALSE(log.torn_tail);
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records[0].step, 5u);
  EXPECT_EQ(log.records[1].step, 6u);
  EXPECT_EQ(log.durable_step, 6u);
}

// ----- checkpoint unit tests -----------------------------------------------

TEST(Checkpoint, RoundTripRestoresStateAndStepClock) {
  const std::string dir = scratch_dir("ckpt_roundtrip");
  const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc,
                              .n = 16,
                              .seed = 3};
  auto memory = core::make_memory(spec);
  const std::vector<VarId> no_reads;
  std::vector<pram::Word> no_values;
  for (std::uint64_t step = 1; step <= 5; ++step) {
    const std::vector<pram::VarWrite> writes = {
        {VarId(static_cast<std::uint32_t>(step * 7)),
         static_cast<pram::Word>(step * 100)}};
    memory->step(no_reads, no_values, writes);
  }

  durability::Checkpointer checkpointer({dir, 2});
  const std::uint64_t bytes = checkpointer.write(*memory, 5);
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(checkpointer.last_step(), 5u);

  const auto found = durability::Checkpointer::latest(dir);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->step, 5u);

  auto restored = core::make_memory(spec);
  ASSERT_TRUE(durability::Checkpointer::load(found->path, *restored));
  EXPECT_EQ(restored->steps_served(), 5u);
  for (std::uint64_t v = 0; v < memory->size(); ++v) {
    const VarId var(static_cast<std::uint32_t>(v));
    ASSERT_EQ(restored->peek(var), memory->peek(var)) << "var " << v;
  }
}

TEST(Checkpoint, TornNewestFileFallsBackToPreviousValidOne) {
  const std::string dir = scratch_dir("ckpt_torn");
  const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc,
                              .n = 16,
                              .seed = 3};
  auto memory = core::make_memory(spec);
  memory->poke(VarId(1), 111);

  durability::Checkpointer checkpointer({dir, 4});
  checkpointer.write(*memory, 4);
  memory->poke(VarId(2), 222);

  // A checkpoint at step 8 torn at several representative prefixes: each
  // must be rejected and latest() must fall back to step 4.
  const auto image = durability::Checkpointer::file_image(*memory, 8);
  const std::string torn_path = durability::Checkpointer::path_for(dir, 8);
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{12}, std::size_t{25},
        image.size() / 2, image.size() - 1}) {
    ASSERT_LT(cut, image.size());
    std::FILE* file = std::fopen(torn_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, cut, file), cut);
    std::fclose(file);

    const auto found = durability::Checkpointer::latest(dir);
    ASSERT_TRUE(found.has_value()) << "cut " << cut;
    EXPECT_EQ(found->step, 4u) << "cut " << cut;
  }

  // The COMPLETE image validates and wins.
  std::FILE* file = std::fopen(torn_path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(image.data(), 1, image.size(), file), image.size());
  std::fclose(file);
  const auto found = durability::Checkpointer::latest(dir);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->step, 8u);
}

TEST(Checkpoint, RetentionPrunesToTheNewestKeep) {
  const std::string dir = scratch_dir("ckpt_keep");
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kHashed, .n = 16, .seed = 3});
  durability::Checkpointer checkpointer({dir, 2});
  checkpointer.write(*memory, 2);
  checkpointer.write(*memory, 4);
  checkpointer.write(*memory, 6);
  EXPECT_EQ(checkpointer.checkpoints_written(), 3u);
  EXPECT_FALSE(fs::exists(durability::Checkpointer::path_for(dir, 2)));
  EXPECT_TRUE(fs::exists(durability::Checkpointer::path_for(dir, 4)));
  EXPECT_TRUE(fs::exists(durability::Checkpointer::path_for(dir, 6)));
}

TEST(Recovery, FromAnEmptyDirectoryIsANoOp) {
  const std::string dir = scratch_dir("recover_nothing");
  auto memory = core::make_memory(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  const auto outcome =
      durability::recover(*memory, dir + "/wal.log", dir);
  EXPECT_FALSE(outcome.checkpoint_loaded);
  EXPECT_EQ(outcome.replayed_records, 0u);
  EXPECT_EQ(outcome.recovered_step, 0u);
  EXPECT_FALSE(outcome.torn_wal_tail);
}

// ----- the kill-point crash matrix -----------------------------------------

struct MatrixScheme {
  const char* name;
  core::SchemeSpec spec;
};

const std::vector<MatrixScheme>& matrix_schemes() {
  static const std::vector<MatrixScheme> schemes = {
      {"dmmpc", {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3}},
      {"ida", {.kind = core::SchemeKind::kIda, .n = 16, .seed = 3}},
      {"hashed", {.kind = core::SchemeKind::kHashed, .n = 16, .seed = 3}},
      {"dmmpc_cached",
       {.kind = core::SchemeKind::kDmmpc,
        .n = 16,
        .seed = 3,
        .cache_lines = 32}},
  };
  return schemes;
}

using MatrixParam = std::tuple<std::size_t, core::KillPoint>;

class CrashMatrixTest : public ::testing::TestWithParam<MatrixParam> {
 protected:
  [[nodiscard]] static const MatrixScheme& scheme() {
    return matrix_schemes()[std::get<0>(GetParam())];
  }
  [[nodiscard]] static core::KillPoint kill_point() {
    return std::get<1>(GetParam());
  }
};

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  return std::string(matrix_schemes()[std::get<0>(info.param)].name) + "_" +
         core::to_string(std::get<1>(info.param));
}

/// The per-kill-point protocol invariants, beyond bit-exactness.
void expect_kill_point_invariants(const core::CrashRecoveryResult& result,
                                  core::KillPoint point) {
  switch (point) {
    case core::KillPoint::kCleanShutdown:
      // Final checkpoint covers everything; the truncated WAL replays
      // nothing.
      EXPECT_EQ(result.durable_step, result.kill_step);
      EXPECT_TRUE(result.recovery.checkpoint_loaded);
      EXPECT_EQ(result.recovery.checkpoint_step, result.kill_step);
      EXPECT_EQ(result.recovery.replayed_records, 0u);
      EXPECT_FALSE(result.recovery.torn_wal_tail);
      break;
    case core::KillPoint::kMidWalAppend:
      // The torn final record is detected and dropped: the durable
      // horizon is exactly one committed step behind the kill.
      EXPECT_EQ(result.durable_step, result.kill_step - 1);
      EXPECT_TRUE(result.recovery.torn_wal_tail);
      break;
    case core::KillPoint::kAfterWalFlush:
      EXPECT_EQ(result.durable_step, result.kill_step);
      EXPECT_FALSE(result.recovery.torn_wal_tail);
      break;
    case core::KillPoint::kMidCheckpoint:
      // The torn checkpoint is rejected; the WAL carries recovery to the
      // full durable horizon anyway.
      EXPECT_EQ(result.durable_step, result.kill_step);
      EXPECT_LT(result.recovery.checkpoint_step, result.kill_step);
      EXPECT_FALSE(result.recovery.torn_wal_tail);
      break;
    case core::KillPoint::kAfterCheckpointPreTruncate:
      // The checkpoint is durable but the log was never trimmed: every
      // surviving record is covered and must be skipped, not re-applied.
      EXPECT_EQ(result.durable_step, result.kill_step);
      EXPECT_TRUE(result.recovery.checkpoint_loaded);
      EXPECT_EQ(result.recovery.checkpoint_step, result.kill_step);
      EXPECT_EQ(result.recovery.replayed_records, 0u);
      EXPECT_GE(result.recovery.skipped_records, 1u);
      break;
  }
}

TEST_P(CrashMatrixTest, RecoversBitExactWithZeroLostCommittedWrites) {
  core::SimulationPipeline pipeline(scheme().spec);
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    core::CrashRecoveryOptions options;
    options.steps = 24;
    options.seed = seed;
    options.family = pram::TraceFamily::kUniform;
    options.kill_point = kill_point();
    options.durability.directory =
        scratch_dir(std::string("matrix_") + scheme().name + "_" +
                    core::to_string(kill_point()) + "_" +
                    std::to_string(seed));
    options.durability.wal_flush_interval = 2;
    options.durability.checkpoint_interval = 6;

    const auto result = pipeline.run_crash_recovery(options);
    ASSERT_GE(result.kill_step, 1u);
    ASSERT_LE(result.kill_step, options.steps);
    EXPECT_TRUE(result.bit_exact)
        << scheme().name << " seed " << seed << " killed at step "
        << result.kill_step;
    EXPECT_EQ(result.lost_committed_writes, 0u)
        << scheme().name << " seed " << seed;
    EXPECT_EQ(result.vars_checked, pipeline.scheme().m);
    expect_kill_point_invariants(result, kill_point());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesKillPoints, CrashMatrixTest,
    ::testing::Combine(::testing::Range(std::size_t{0},
                                        matrix_schemes().size()),
                       ::testing::ValuesIn(core::all_kill_points())),
    matrix_name);

// Crash recovery under ACTIVE fault injection: dynamic-onset module
// kills land before the crash, the WAL carries onset acknowledgements,
// and the recovered machine (same fault seed, oracle restored from the
// checkpoint) still matches the uninterrupted reference bit for bit.
TEST(CrashRecovery, SurvivesCrashUnderDynamicFaultOnsets) {
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  const faults::FaultSpec fault_spec{.seed = 41,
                                     .module_kill_rate = 0.2,
                                     .onset_min = 2,
                                     .onset_max = 6};
  core::CrashRecoveryOptions options;
  options.steps = 20;
  options.seed = 7;
  options.kill_step = 12;  // past the onset window: onsets are acked
  options.kill_point = core::KillPoint::kAfterWalFlush;
  options.durability.directory = scratch_dir("crash_faulted");
  // No natural checkpoint before the kill, so truncate_through never
  // trims the early onset acknowledgements out of the surviving log.
  options.durability.checkpoint_interval = 100;

  const auto result = pipeline.run_crash_recovery(options, &fault_spec);
  EXPECT_TRUE(result.bit_exact);
  EXPECT_EQ(result.durable_step, 12u);

  // The surviving log shows the acknowledged onsets alongside commits.
  const auto log = durability::read_wal(options.durability.directory +
                                        std::string("/wal.log"));
  std::size_t onset_records = 0;
  for (const auto& record : log.records) {
    if (record.kind == durability::WalRecordKind::kFaultOnset) {
      ++onset_records;
    }
  }
  EXPECT_GT(onset_records, 0u);
}

// Observability: a crash-recovery run journals the checkpoint lifecycle
// (kCheckpointBegin/kCheckpointEnd) and the replay (kWalReplay), and the
// wal.* / checkpoint.* counters tally the protocol's actual traffic.
TEST(CrashRecovery, JournalsCheckpointAndReplayEvents) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  core::CrashRecoveryOptions options;
  options.steps = 16;
  options.seed = 5;
  options.kill_step = 15;
  options.kill_point = core::KillPoint::kAfterWalFlush;
  options.durability.directory = scratch_dir("crash_obs");
  options.durability.checkpoint_interval = 4;
  options.obs_enabled = true;

  const auto result = pipeline.run_crash_recovery(options);
  EXPECT_TRUE(result.bit_exact);

  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t replays = 0;
  for (const auto& event : result.obs.journal.events()) {
    switch (event.kind) {
      case obs::EventKind::kCheckpointBegin: ++begins; break;
      case obs::EventKind::kCheckpointEnd: ++ends; break;
      case obs::EventKind::kWalReplay: ++replays; break;
      default: break;
    }
  }
  EXPECT_EQ(begins, 3u);  // natural checkpoints at steps 4, 8, 12
  EXPECT_EQ(ends, begins);
  // The WAL tail past the last checkpoint (steps 13..15) replays.
  EXPECT_EQ(replays, 3u);

  const auto& counters = result.obs.metrics.counters();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  EXPECT_GT(counter("wal.records"), 0u);
  EXPECT_GT(counter("wal.flushes"), 0u);
  EXPECT_GT(counter("wal.flushed_bytes"), 0u);
  EXPECT_EQ(counter("wal.truncations"), 3u);
  EXPECT_EQ(counter("checkpoint.writes"), 3u);
  EXPECT_GT(counter("checkpoint.bytes"), 0u);
  EXPECT_EQ(counter("checkpoint.loads"), 1u);
  EXPECT_EQ(counter("wal.replayed_records"), 3u);
}

// Recovery cost must scale with the WAL tail, not the run length: a long
// run with a recent checkpoint replays only the few records after it.
TEST(CrashRecovery, ReplayScalesWithLogTailNotRunLength) {
  core::SimulationPipeline pipeline(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3});
  core::CrashRecoveryOptions options;
  options.seed = 11;
  options.kill_point = core::KillPoint::kAfterWalFlush;
  options.durability.checkpoint_interval = 8;

  options.steps = 64;
  options.kill_step = 62;
  options.durability.directory = scratch_dir("tail_long");
  const auto long_run = pipeline.run_crash_recovery(options);

  options.steps = 16;
  options.kill_step = 14;
  options.durability.directory = scratch_dir("tail_short");
  const auto short_run = pipeline.run_crash_recovery(options);

  EXPECT_TRUE(long_run.bit_exact);
  EXPECT_TRUE(short_run.bit_exact);
  // Both killed 6 steps past their last natural checkpoint (56 and 8):
  // identical replay work despite a 4x difference in run length.
  EXPECT_EQ(long_run.recovery.checkpoint_step, 56u);
  EXPECT_EQ(short_run.recovery.checkpoint_step, 8u);
  EXPECT_EQ(long_run.recovery.replayed_records, 6u);
  EXPECT_EQ(short_run.recovery.replayed_records, 6u);
}

}  // namespace
}  // namespace pramsim
