// Coverage-widening tests for corners the module test files don't reach:
// host parallelism helpers, greedy-vs-exact adversarial coverage, edge-key
// encodings, full disassembler coverage, table/CSV formatting edges, and
// scheme-factory edge configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/schemes.hpp"
#include "memmap/expansion.hpp"
#include "memmap/memory_map.hpp"
#include "network/paths.hpp"
#include "network/topology.hpp"
#include "pram/instruction.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace pramsim {
namespace {

// ----------------------------- parallel_for -----------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  util::parallel_for(0, 1000, [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  util::parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  util::parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MatchesSerialAccumulation) {
  std::vector<std::uint64_t> parallel_out(512, 0);
  std::vector<std::uint64_t> serial_out(512, 0);
  auto f = [](std::size_t i) { return (i * 2654435761ULL) >> 7; };
  util::parallel_for(0, 512,
                     [&](std::size_t i) { parallel_out[i] = f(i); });
  util::serial_for(0, 512, [&](std::size_t i) { serial_out[i] = f(i); });
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, WorkerCountBounded) {
  EXPECT_EQ(util::parallel_workers(1), 1u);
  EXPECT_GE(util::parallel_workers(10'000), 1u);
  EXPECT_LE(util::parallel_workers(10'000), 1024u);
}

// -------------------- greedy vs exact adversarial coverage --------------

TEST(Expansion, GreedyUpperBoundsExactOnManyInstances) {
  util::Rng rng(8);
  memmap::TableMap map(128, 24, 5, 99);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<VarId> vars;
    const auto picks = rng.sample_without_replacement(128, 4);
    vars.reserve(picks.size());
    for (const auto p : picks) {
      vars.emplace_back(static_cast<std::uint32_t>(p));
    }
    const auto exact = memmap::exact_min_coverage(map, 3, vars);
    const auto greedy = memmap::greedy_min_coverage(map, 3, vars);
    EXPECT_GE(greedy, exact) << "trial " << trial;
    // Greedy should be close: within 2x on these tiny instances.
    EXPECT_LE(greedy, 2 * exact) << "trial " << trial;
  }
}

TEST(Expansion, MoreRefineRoundsNeverWorsenTheBound) {
  memmap::TableMap map(256, 32, 7, 5);
  util::Rng rng(3);
  const auto picks = rng.sample_without_replacement(256, 5);
  std::vector<VarId> vars;
  for (const auto p : picks) {
    vars.emplace_back(static_cast<std::uint32_t>(p));
  }
  const auto one = memmap::greedy_min_coverage(map, 4, vars, 1);
  const auto five = memmap::greedy_min_coverage(map, 4, vars, 5);
  EXPECT_LE(five, one);
}

// ------------------------------ edge keys --------------------------------

TEST(EdgeKey, DistinctAcrossKindsTreesPositionsDirections) {
  std::set<std::uint64_t> keys;
  for (const auto kind : {net::TreeKind::kRow, net::TreeKind::kCol}) {
    for (std::uint32_t tree = 0; tree < 8; ++tree) {
      for (std::uint32_t pos = 2; pos < 16; ++pos) {
        for (const auto dir : {net::Direction::kDown, net::Direction::kUp}) {
          keys.insert(net::tree_edge(kind, tree, pos, dir).raw);
        }
      }
    }
  }
  for (std::uint32_t module = 0; module < 64; ++module) {
    keys.insert(net::module_port(module).raw);
  }
  EXPECT_EQ(keys.size(), 2u * 8 * 14 * 2 + 64);
}

TEST(EdgeKey, PathsNeverContainDuplicateEdges) {
  // A single request path must not reuse a directed edge (it would
  // self-collide in the router).
  util::Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t S = 32;
    const auto path = net::hp_request_path(
        S, static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)),
        static_cast<std::uint32_t>(rng.below(S)),
        /*lca_turnaround=*/trial % 2 == 0);
    std::set<std::uint64_t> seen;
    for (const auto edge : path) {
      EXPECT_TRUE(seen.insert(edge.raw).second) << "trial " << trial;
    }
  }
}

// ---------------------------- disassembler -------------------------------

TEST(Disassembler, CoversEveryOpcode) {
  using pram::Instruction;
  using pram::Opcode;
  for (int op = 0; op <= static_cast<int>(Opcode::kNprocs); ++op) {
    Instruction ins;
    ins.op = static_cast<Opcode>(op);
    ins.r1 = 1;
    ins.r2 = 2;
    ins.r3 = 3;
    ins.imm = 7;
    const auto text = pram::disassemble(ins);
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text.find("???"), std::string::npos) << "opcode " << op;
  }
}

TEST(Disassembler, SharedAccessPredicate) {
  EXPECT_TRUE(pram::is_shared_access(pram::Opcode::kReadShared));
  EXPECT_TRUE(pram::is_shared_access(pram::Opcode::kWriteShared));
  EXPECT_FALSE(pram::is_shared_access(pram::Opcode::kLoadLocal));
  EXPECT_FALSE(pram::is_shared_access(pram::Opcode::kAdd));
}

// ------------------------------- tables ----------------------------------

TEST(TableEdge, NegativeAndZeroValues) {
  util::Table t({"a", "b"});
  t.add_row({std::int64_t{-42}, 0.0});
  const auto s = t.to_string(2);
  EXPECT_NE(s.find("-42"), std::string::npos);
  EXPECT_NE(s.find("0.00"), std::string::npos);
}

TEST(TableEdge, WideStringsAlignLeft) {
  util::Table t({"name", "x"});
  t.add_row({std::string("short"), std::int64_t{1}});
  t.add_row({std::string("a-much-longer-name"), std::int64_t{2}});
  const auto s = t.to_string();
  // Both rows render and the header rule covers the widest cell.
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("short"), std::string::npos);
}

TEST(TableEdge, CsvEscapesNothingButRoundTripsNumbers) {
  util::Table t({"v"});
  t.add_row({3.14159});
  EXPECT_NE(t.to_csv(5).find("3.14159"), std::string::npos);
}

// ------------------------- scheme-factory edges --------------------------

TEST(SchemeFactoryEdge, MinVarsExpandsTheMap) {
  const auto inst = core::make_scheme(
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .min_vars = 100'000});
  EXPECT_GE(inst.m, 100'000u);
  EXPECT_EQ(inst.engine->map().num_vars(), inst.m);
}

TEST(SchemeFactoryEdge, SmallestSupportedMachine) {
  for (const auto kind :
       {core::SchemeKind::kHpMot, core::SchemeKind::kLppMot,
        core::SchemeKind::kCrossbar, core::SchemeKind::kDmmpc,
        core::SchemeKind::kUwMpc, core::SchemeKind::kAltBdn}) {
    const auto inst = core::make_scheme({.kind = kind, .n = 4, .seed = 2});
    EXPECT_GE(inst.r, 1u) << core::to_string(kind);
    std::vector<majority::VarRequest> reqs = {{VarId(1), ProcId(0)},
                                              {VarId(2), ProcId(1)}};
    const auto result = inst.engine->run_step(reqs);
    EXPECT_EQ(result.accessed_mask.size(), 2u) << core::to_string(kind);
  }
}

TEST(SchemeFactoryEdge, SeedChangesMapNotParameters) {
  const auto a = core::make_scheme(
      {.kind = core::SchemeKind::kHpMot, .n = 32, .seed = 1});
  const auto b = core::make_scheme(
      {.kind = core::SchemeKind::kHpMot, .n = 32, .seed = 2});
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.n_modules, b.n_modules);
  // but the placements differ
  int same = 0;
  for (std::uint32_t v = 0; v < 100; ++v) {
    same += a.map->copies(VarId(v)) == b.map->copies(VarId(v)) ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace pramsim
