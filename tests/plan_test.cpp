// The AccessPlan / PlanBuilder gate: the arena-backed plan must carry
// exactly the joins the serve path consumes (request union, read/write
// index maps, block groups), and MemorySystem::serve — native overrides
// AND the default step() adapter — must stay value-equivalent to the
// legacy step() path for every SchemeKind, including wrapped in
// faults::FaultableMemory at fault rate 0.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "pram/trace.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

pram::AccessBatch mixed_batch() {
  pram::AccessBatch batch;
  batch.push_back({ProcId(0), pram::AccessOp::kRead, VarId(5), 0});
  batch.push_back({ProcId(3), pram::AccessOp::kWrite, VarId(5), 33});
  batch.push_back({ProcId(1), pram::AccessOp::kWrite, VarId(5), 11});
  batch.push_back({ProcId(2), pram::AccessOp::kRead, VarId(9), 0});
  batch.push_back({ProcId(4), pram::AccessOp::kWrite, VarId(2), 44});
  batch.push_back({ProcId(5), pram::AccessOp::kRead, VarId(9), 0});
  return batch;
}

TEST(PlanBuilder, PlanCarriesCombinedListsAndJoins) {
  pram::FlatMemory memory(16);
  core::PlanBuilder builder;
  const auto& plan = builder.build(mixed_batch(), memory);

  // Combined lists: reads in first-appearance order, CW-resolved writes.
  ASSERT_EQ(plan.reads.size(), 2u);
  EXPECT_EQ(plan.reads[0], VarId(5));
  EXPECT_EQ(plan.reads[1], VarId(9));
  ASSERT_EQ(plan.writes.size(), 2u);
  EXPECT_EQ(plan.writes[0].var, VarId(5));
  EXPECT_EQ(plan.writes[0].value, 11);  // lowest-id writer wins
  EXPECT_EQ(plan.writes[1].var, VarId(2));
  EXPECT_EQ(plan.writes[1].value, 44);

  // Request union: reads first, then write-only variables; ops/flags
  // reflect the combined accesses.
  ASSERT_EQ(plan.requests.size(), 3u);
  EXPECT_EQ(plan.requests[0].var, VarId(5));
  EXPECT_EQ(plan.requests[0].op, pram::AccessOp::kWrite);
  EXPECT_TRUE(plan.requests[0].is_read);
  EXPECT_EQ(plan.requests[1].var, VarId(9));
  EXPECT_EQ(plan.requests[1].op, pram::AccessOp::kRead);
  EXPECT_TRUE(plan.requests[1].is_read);
  EXPECT_EQ(plan.requests[2].var, VarId(2));
  EXPECT_EQ(plan.requests[2].op, pram::AccessOp::kWrite);
  EXPECT_FALSE(plan.requests[2].is_read);

  // Joins are mutually inverse.
  ASSERT_EQ(plan.read_request.size(), plan.reads.size());
  ASSERT_EQ(plan.write_request.size(), plan.writes.size());
  ASSERT_EQ(plan.request_write.size(), plan.requests.size());
  EXPECT_EQ(plan.read_request[0], 0u);
  EXPECT_EQ(plan.read_request[1], 1u);
  EXPECT_EQ(plan.write_request[0], 0u);
  EXPECT_EQ(plan.write_request[1], 2u);
  EXPECT_EQ(plan.request_write[0], 0u);
  EXPECT_EQ(plan.request_write[1], pram::AccessPlan::kNone);
  EXPECT_EQ(plan.request_write[2], 1u);

  // FlatMemory requests no grouping.
  EXPECT_FALSE(plan.grouped());
}

TEST(PlanBuilder, GroupsMatchTargetKeysAndPartitionRequests) {
  auto memory = core::make_memory({.kind = core::SchemeKind::kIda,
                                   .n = 16,
                                   .seed = 5});
  ASSERT_TRUE(memory->wants_plan_groups());
  util::Rng rng(7);
  core::PlanBuilder builder;
  const auto batch = pram::make_batch(pram::TraceFamily::kUniform, 16,
                                      memory->size(), rng);
  const auto& plan = builder.build(batch, *memory);
  ASSERT_TRUE(plan.grouped());
  ASSERT_EQ(plan.group_offsets.size(), plan.num_groups() + 1);
  ASSERT_EQ(plan.group_requests.size(), plan.requests.size());
  EXPECT_EQ(plan.group_offsets.front(), 0u);
  EXPECT_EQ(plan.group_offsets.back(), plan.requests.size());
  std::vector<bool> seen(plan.requests.size(), false);
  for (std::size_t g = 0; g < plan.num_groups(); ++g) {
    if (g > 0) {
      EXPECT_LT(plan.group_keys[g - 1], plan.group_keys[g]);  // ascending
    }
    for (std::uint32_t i = plan.group_offsets[g];
         i < plan.group_offsets[g + 1]; ++i) {
      const std::uint32_t req = plan.group_requests[i];
      EXPECT_FALSE(seen[req]);  // a partition, not a cover
      seen[req] = true;
      EXPECT_EQ(memory->plan_group_of(plan.requests[req].var),
                plan.group_keys[g]);
      EXPECT_EQ(plan.request_group[req], g);
    }
  }
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(PlanBuilder, ReusedBuilderMatchesFreshBuilder) {
  pram::FlatMemory memory(1 << 12);
  core::PlanBuilder reused;
  util::Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const auto batch = pram::make_batch(pram::TraceFamily::kUniform, 64,
                                        1 << 12, rng);
    const auto& plan = reused.build(batch, memory);
    core::PlanBuilder fresh;
    const auto& expected = fresh.build(batch, memory);
    ASSERT_EQ(plan.reads.size(), expected.reads.size()) << round;
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      EXPECT_EQ(plan.reads[i], expected.reads[i]) << round;
    }
    ASSERT_EQ(plan.writes.size(), expected.writes.size()) << round;
    for (std::size_t i = 0; i < plan.writes.size(); ++i) {
      EXPECT_EQ(plan.writes[i].var, expected.writes[i].var) << round;
      EXPECT_EQ(plan.writes[i].value, expected.writes[i].value) << round;
    }
    ASSERT_EQ(plan.requests.size(), expected.requests.size()) << round;
  }
}

// The cross-path value-equivalence gate: for EVERY SchemeKind, serving
// random traffic through serve(plan) must produce the same read values
// and the same committed memory as the legacy step() path — including
// with the scheme wrapped in a FaultableMemory at fault rate 0, where
// serve() funnels through the wrapper's default adapter.
class PlanServeTest : public ::testing::TestWithParam<core::SchemeKind> {};

void expect_serve_matches_step(pram::MemorySystem& via_serve,
                               pram::MemorySystem& via_step,
                               std::uint32_t n, const char* name) {
  util::Rng rng(23);
  core::PlanBuilder builder;
  const std::uint64_t m = via_serve.size();
  for (int s = 0; s < 12; ++s) {
    const auto family = s % 2 == 0 ? pram::TraceFamily::kUniform
                                   : pram::TraceFamily::kPermutation;
    auto family_rng = rng.split();
    const auto batch = pram::make_batch(family, n, m, family_rng);
    const auto& plan = builder.build(batch, via_serve);
    std::vector<pram::Word> serve_values(plan.reads.size());
    std::vector<pram::Word> step_values(plan.reads.size());
    via_serve.serve(plan, serve_values);
    via_step.step(plan.reads, step_values, plan.writes);
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      ASSERT_EQ(serve_values[i], step_values[i])
          << name << " step " << s << " read " << i;
    }
  }
  for (std::uint32_t v = 0; v < 2 * n; ++v) {
    ASSERT_EQ(via_serve.peek(VarId(v)), via_step.peek(VarId(v)))
        << name << " cell " << v;
  }
}

TEST_P(PlanServeTest, ServeMatchesStepBitExact) {
  const std::uint32_t n = 16;
  const core::SchemeSpec spec{.kind = GetParam(), .n = n, .seed = 5};
  auto via_serve = core::make_memory(spec);
  auto via_step = core::make_memory(spec);
  expect_serve_matches_step(*via_serve, *via_step, n,
                            core::to_string(GetParam()));
}

TEST_P(PlanServeTest, ServeMatchesStepUnderInertFaultWrapper) {
  const std::uint32_t n = 16;
  const core::SchemeSpec spec{.kind = GetParam(), .n = n, .seed = 5};
  const faults::FaultSpec inert{.seed = 77};
  ASSERT_TRUE(inert.inert());
  faults::FaultableMemory via_serve(core::make_memory(spec), inert);
  faults::FaultableMemory via_step(core::make_memory(spec), inert);
  expect_serve_matches_step(via_serve, via_step, n,
                            core::to_string(GetParam()));
  EXPECT_EQ(via_serve.reliability().wrong_reads, 0u);
  EXPECT_EQ(via_step.reliability().wrong_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(EverySchemeKind, PlanServeTest,
                         ::testing::ValuesIn(core::all_scheme_kinds()),
                         [](const ::testing::TestParamInfo<core::SchemeKind>&
                                info) {
                           std::string name = core::to_string(info.param);
                           for (auto& ch : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace pramsim
