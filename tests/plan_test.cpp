// The AccessPlan / PlanBuilder gate: the arena-backed plan must carry
// exactly the joins the serve path consumes (request union, read/write
// index maps, block groups), and MemorySystem::serve — native overrides
// AND the default step() adapter — must stay value-equivalent to the
// legacy step() path for every SchemeKind, including wrapped in
// faults::FaultableMemory at fault rate 0.
//
// Engine API v2 additions gated here too: serve(plan, ctx) under the
// kGroupParallel backend must be value-equivalent to step() AND
// bit-identical to the serial backend at any executor worker count, and
// per-read outage flags must reach ServeContext identically on every
// path (native serve, default adapter, FaultableMemory wrapper).
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "core/plan_builder.hpp"
#include "core/schemes.hpp"
#include "faults/fault_model.hpp"
#include "faults/faultable_memory.hpp"
#include "pram/serve_context.hpp"
#include "pram/trace.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace pramsim {
namespace {

pram::AccessBatch mixed_batch() {
  pram::AccessBatch batch;
  batch.push_back({ProcId(0), pram::AccessOp::kRead, VarId(5), 0});
  batch.push_back({ProcId(3), pram::AccessOp::kWrite, VarId(5), 33});
  batch.push_back({ProcId(1), pram::AccessOp::kWrite, VarId(5), 11});
  batch.push_back({ProcId(2), pram::AccessOp::kRead, VarId(9), 0});
  batch.push_back({ProcId(4), pram::AccessOp::kWrite, VarId(2), 44});
  batch.push_back({ProcId(5), pram::AccessOp::kRead, VarId(9), 0});
  return batch;
}

TEST(PlanBuilder, PlanCarriesCombinedListsAndJoins) {
  pram::FlatMemory memory(16);
  core::PlanBuilder builder;
  const auto& plan = builder.build(mixed_batch(), memory);

  // Combined lists: reads in first-appearance order, CW-resolved writes.
  ASSERT_EQ(plan.reads.size(), 2u);
  EXPECT_EQ(plan.reads[0], VarId(5));
  EXPECT_EQ(plan.reads[1], VarId(9));
  ASSERT_EQ(plan.writes.size(), 2u);
  EXPECT_EQ(plan.writes[0].var, VarId(5));
  EXPECT_EQ(plan.writes[0].value, 11);  // lowest-id writer wins
  EXPECT_EQ(plan.writes[1].var, VarId(2));
  EXPECT_EQ(plan.writes[1].value, 44);

  // Request union: reads first, then write-only variables; ops/flags
  // reflect the combined accesses.
  ASSERT_EQ(plan.requests.size(), 3u);
  EXPECT_EQ(plan.requests[0].var, VarId(5));
  EXPECT_EQ(plan.requests[0].op, pram::AccessOp::kWrite);
  EXPECT_TRUE(plan.requests[0].is_read);
  EXPECT_EQ(plan.requests[1].var, VarId(9));
  EXPECT_EQ(plan.requests[1].op, pram::AccessOp::kRead);
  EXPECT_TRUE(plan.requests[1].is_read);
  EXPECT_EQ(plan.requests[2].var, VarId(2));
  EXPECT_EQ(plan.requests[2].op, pram::AccessOp::kWrite);
  EXPECT_FALSE(plan.requests[2].is_read);

  // Joins are mutually inverse.
  ASSERT_EQ(plan.read_request.size(), plan.reads.size());
  ASSERT_EQ(plan.write_request.size(), plan.writes.size());
  ASSERT_EQ(plan.request_write.size(), plan.requests.size());
  EXPECT_EQ(plan.read_request[0], 0u);
  EXPECT_EQ(plan.read_request[1], 1u);
  EXPECT_EQ(plan.write_request[0], 0u);
  EXPECT_EQ(plan.write_request[1], 2u);
  EXPECT_EQ(plan.request_write[0], 0u);
  EXPECT_EQ(plan.request_write[1], pram::AccessPlan::kNone);
  EXPECT_EQ(plan.request_write[2], 1u);

  // FlatMemory requests no grouping.
  EXPECT_FALSE(plan.grouped());
}

TEST(PlanBuilder, GroupsMatchTargetKeysAndPartitionRequests) {
  auto memory = core::make_memory({.kind = core::SchemeKind::kIda,
                                   .n = 16,
                                   .seed = 5});
  ASSERT_TRUE(memory->wants_plan_groups());
  util::Rng rng(7);
  core::PlanBuilder builder;
  const auto batch = pram::make_batch(pram::TraceFamily::kUniform, 16,
                                      memory->size(), rng);
  const auto& plan = builder.build(batch, *memory);
  ASSERT_TRUE(plan.grouped());
  ASSERT_EQ(plan.group_offsets.size(), plan.num_groups() + 1);
  ASSERT_EQ(plan.group_requests.size(), plan.requests.size());
  EXPECT_EQ(plan.group_offsets.front(), 0u);
  EXPECT_EQ(plan.group_offsets.back(), plan.requests.size());
  std::vector<bool> seen(plan.requests.size(), false);
  for (std::size_t g = 0; g < plan.num_groups(); ++g) {
    if (g > 0) {
      EXPECT_LT(plan.group_keys[g - 1], plan.group_keys[g]);  // ascending
    }
    for (std::uint32_t i = plan.group_offsets[g];
         i < plan.group_offsets[g + 1]; ++i) {
      const std::uint32_t req = plan.group_requests[i];
      EXPECT_FALSE(seen[req]);  // a partition, not a cover
      seen[req] = true;
      EXPECT_EQ(memory->plan_group_of(plan.requests[req].var),
                plan.group_keys[g]);
      EXPECT_EQ(plan.request_group[req], g);
    }
  }
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(PlanBuilder, ReusedBuilderMatchesFreshBuilder) {
  pram::FlatMemory memory(1 << 12);
  core::PlanBuilder reused;
  util::Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const auto batch = pram::make_batch(pram::TraceFamily::kUniform, 64,
                                        1 << 12, rng);
    const auto& plan = reused.build(batch, memory);
    core::PlanBuilder fresh;
    const auto& expected = fresh.build(batch, memory);
    ASSERT_EQ(plan.reads.size(), expected.reads.size()) << round;
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      EXPECT_EQ(plan.reads[i], expected.reads[i]) << round;
    }
    ASSERT_EQ(plan.writes.size(), expected.writes.size()) << round;
    for (std::size_t i = 0; i < plan.writes.size(); ++i) {
      EXPECT_EQ(plan.writes[i].var, expected.writes[i].var) << round;
      EXPECT_EQ(plan.writes[i].value, expected.writes[i].value) << round;
    }
    ASSERT_EQ(plan.requests.size(), expected.requests.size()) << round;
  }
}

// The cross-path value-equivalence gate: for EVERY SchemeKind, serving
// random traffic through serve(plan) must produce the same read values
// and the same committed memory as the legacy step() path — including
// with the scheme wrapped in a FaultableMemory at fault rate 0, where
// serve() funnels through the wrapper's default adapter.
class PlanServeTest : public ::testing::TestWithParam<core::SchemeKind> {};

void expect_serve_matches_step(pram::MemorySystem& via_serve,
                               pram::MemorySystem& via_step,
                               std::uint32_t n, const char* name) {
  util::Rng rng(23);
  pram::ServeContext ctx;
  core::PlanBuilder builder;
  const std::uint64_t m = via_serve.size();
  for (int s = 0; s < 12; ++s) {
    const auto family = s % 2 == 0 ? pram::TraceFamily::kUniform
                                   : pram::TraceFamily::kPermutation;
    auto family_rng = rng.split();
    const auto batch = pram::make_batch(family, n, m, family_rng);
    const auto& plan = builder.build(batch, via_serve);
    std::vector<pram::Word> serve_values(plan.reads.size());
    std::vector<pram::Word> step_values(plan.reads.size());
    ctx.bind(serve_values);
    via_serve.serve(plan, ctx);
    via_step.step(plan.reads, step_values, plan.writes);
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      ASSERT_EQ(serve_values[i], step_values[i])
          << name << " step " << s << " read " << i;
    }
  }
  for (std::uint32_t v = 0; v < 2 * n; ++v) {
    ASSERT_EQ(via_serve.peek(VarId(v)), via_step.peek(VarId(v)))
        << name << " cell " << v;
  }
}

TEST_P(PlanServeTest, ServeMatchesStepBitExact) {
  const std::uint32_t n = 16;
  const core::SchemeSpec spec{.kind = GetParam(), .n = n, .seed = 5};
  auto via_serve = core::make_memory(spec);
  auto via_step = core::make_memory(spec);
  expect_serve_matches_step(*via_serve, *via_step, n,
                            core::to_string(GetParam()));
}

TEST_P(PlanServeTest, ServeMatchesStepUnderInertFaultWrapper) {
  const std::uint32_t n = 16;
  const core::SchemeSpec spec{.kind = GetParam(), .n = n, .seed = 5};
  const faults::FaultSpec inert{.seed = 77};
  ASSERT_TRUE(inert.inert());
  faults::FaultableMemory via_serve(core::make_memory(spec), inert);
  faults::FaultableMemory via_step(core::make_memory(spec), inert);
  expect_serve_matches_step(via_serve, via_step, n,
                            core::to_string(GetParam()));
  EXPECT_EQ(via_serve.reliability().wrong_reads, 0u);
  EXPECT_EQ(via_step.reliability().wrong_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(EverySchemeKind, PlanServeTest,
                         ::testing::ValuesIn(core::all_scheme_kinds()),
                         [](const ::testing::TestParamInfo<core::SchemeKind>&
                                info) {
                           std::string name = core::to_string(info.param);
                           for (auto& ch : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

/// Restore the automatic worker policy even when an assertion fails.
struct WorkerOverrideGuard {
  ~WorkerOverrideGuard() { util::set_parallel_workers_override(0); }
};

// ----- Engine API v2: ServeContext + group-parallel backend ------------

// For EVERY SchemeKind, the kGroupParallel backend (downgraded to serial
// by schemes without the capability) must stay value-equivalent to the
// legacy step() path when served through the context entry with a live
// executor fanning groups across workers.
TEST_P(PlanServeTest, GroupParallelServeMatchesStep) {
  WorkerOverrideGuard guard;
  util::set_parallel_workers_override(4);
  const std::uint32_t n = 16;
  core::SchemeSpec spec{.kind = GetParam(), .n = n, .seed = 5};
  spec.backend = pram::ServeBackend::kGroupParallel;
  auto via_serve = core::make_scheme(spec);
  auto via_step = core::make_memory(spec);

  util::Rng rng(23);
  util::Executor executor;
  pram::ServeContext ctx({}, &executor);
  core::PlanBuilder builder;
  const std::uint64_t m = via_serve.memory->size();
  for (int s = 0; s < 12; ++s) {
    const auto family = s % 2 == 0 ? pram::TraceFamily::kUniform
                                   : pram::TraceFamily::kPermutation;
    auto family_rng = rng.split();
    const auto batch = pram::make_batch(family, n, m, family_rng);
    const auto& plan = builder.build(batch, *via_serve.memory);
    std::vector<pram::Word> serve_values(plan.reads.size());
    std::vector<pram::Word> step_values(plan.reads.size());
    ctx.bind(serve_values);
    via_serve.memory->serve(plan, ctx);
    via_step->step(plan.reads, step_values, plan.writes);
    for (std::size_t i = 0; i < plan.reads.size(); ++i) {
      ASSERT_EQ(serve_values[i], step_values[i])
          << core::to_string(GetParam()) << " step " << s << " read " << i;
    }
  }
  for (std::uint32_t v = 0; v < 2 * n; ++v) {
    ASSERT_EQ(via_serve.memory->peek(VarId(v)), via_step->peek(VarId(v)))
        << core::to_string(GetParam()) << " cell " << v;
  }
}

// The schemes shipping native group-parallel serve must actually engage
// it (capability + plan groups), and the backend must be bit-identical
// to the serial backend at every worker count — values, committed state,
// reliability telemetry, and outage flags — healthy AND degraded. The
// sweep crosses every native scheme with region widths 1 and 8, pinning
// the frozen-structure rule (region rows pre-materialized before the
// fan-out) at wide granularity too.
class GroupParallelBackendTest
    : public ::testing::TestWithParam<
          std::tuple<core::SchemeKind, std::uint32_t>> {};

void drive_backend(core::SchemeSpec spec, pram::ServeBackend backend,
                   std::size_t workers, const faults::FaultModel* hooks,
                   std::vector<pram::Word>& all_values,
                   std::vector<std::uint8_t>& all_flags,
                   pram::ReliabilityStats& stats,
                   std::vector<pram::Word>& final_cells) {
  WorkerOverrideGuard guard;
  util::set_parallel_workers_override(workers);
  spec.backend = backend;
  auto memory = core::make_memory(spec);
  if (backend == pram::ServeBackend::kGroupParallel) {
    ASSERT_TRUE(memory->capabilities() & pram::kGroupParallel)
        << core::to_string(spec.kind);
    ASSERT_TRUE(memory->wants_plan_groups());
  }
  if (hooks != nullptr) {
    ASSERT_TRUE(memory->set_fault_hooks(hooks));
  }
  util::Rng rng(31);
  util::Executor executor;
  pram::ServeContext ctx({}, &executor);
  core::PlanBuilder builder;
  std::vector<pram::Word> values;
  for (int s = 0; s < 10; ++s) {
    const auto batch = pram::make_batch(pram::TraceFamily::kUniform,
                                        spec.n, memory->size(), rng);
    const auto& plan = builder.build(batch, *memory);
    values.resize(plan.reads.size());
    ctx.bind(values);
    memory->serve(plan, ctx);
    all_values.insert(all_values.end(), values.begin(), values.end());
    if (ctx.flags().empty()) {
      all_flags.insert(all_flags.end(), plan.reads.size(), 0);
    } else {
      all_flags.insert(all_flags.end(), ctx.flags().begin(),
                       ctx.flags().end());
    }
    // The legacy accessor must mirror the context on every path.
    const auto legacy = memory->flagged_reads();
    ASSERT_EQ(legacy.size(), ctx.flags().size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      ASSERT_EQ(legacy[i] != 0, ctx.flags()[i] != 0);
    }
  }
  stats = memory->reliability();
  for (std::uint32_t v = 0; v < 4 * spec.n; ++v) {
    final_cells.push_back(memory->peek(VarId(v)));
  }
}

TEST_P(GroupParallelBackendTest, BitIdenticalToSerialAtAnyWorkerCount) {
  const core::SchemeSpec spec{.kind = std::get<0>(GetParam()),
                              .n = 16,
                              .seed = 7,
                              .region_words = std::get<1>(GetParam())};
  const faults::FaultSpec fault_spec{.seed = 99, .module_kill_rate = 0.4,
                                     .stuck_rate = 0.05,
                                     .corruption_rate = 0.2};
  for (const bool faulty : {false, true}) {
    const auto n_modules = core::make_memory(spec)->num_modules();
    const faults::FaultModel model(fault_spec, n_modules);
    const faults::FaultModel* hooks = faulty ? &model : nullptr;

    std::vector<pram::Word> serial_values, gp1_values, gp4_values;
    std::vector<std::uint8_t> serial_flags, gp1_flags, gp4_flags;
    pram::ReliabilityStats serial_stats, gp1_stats, gp4_stats;
    std::vector<pram::Word> serial_cells, gp1_cells, gp4_cells;
    drive_backend(spec, pram::ServeBackend::kSerial, 1, hooks,
                  serial_values, serial_flags, serial_stats, serial_cells);
    drive_backend(spec, pram::ServeBackend::kGroupParallel, 1, hooks,
                  gp1_values, gp1_flags, gp1_stats, gp1_cells);
    drive_backend(spec, pram::ServeBackend::kGroupParallel, 4, hooks,
                  gp4_values, gp4_flags, gp4_stats, gp4_cells);

    EXPECT_EQ(serial_values, gp1_values) << (faulty ? "faulty" : "healthy");
    EXPECT_EQ(serial_values, gp4_values) << (faulty ? "faulty" : "healthy");
    EXPECT_EQ(serial_flags, gp1_flags);
    EXPECT_EQ(serial_flags, gp4_flags);
    EXPECT_EQ(serial_cells, gp1_cells);
    EXPECT_EQ(serial_cells, gp4_cells);
    EXPECT_EQ(serial_stats.reads_served, gp4_stats.reads_served);
    EXPECT_EQ(serial_stats.faults_masked, gp4_stats.faults_masked);
    EXPECT_EQ(serial_stats.uncorrectable, gp4_stats.uncorrectable);
    EXPECT_EQ(serial_stats.erasures_skipped, gp4_stats.erasures_skipped);
    EXPECT_EQ(serial_stats.units_faulty, gp4_stats.units_faulty);
    EXPECT_EQ(serial_stats.writes_dropped, gp4_stats.writes_dropped);
    EXPECT_EQ(serial_stats.corrupt_stores, gp4_stats.corrupt_stores);
    if (faulty) {
      EXPECT_GT(serial_stats.reads_served, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NativeGroupParallelSchemes, GroupParallelBackendTest,
    ::testing::Combine(::testing::Values(core::SchemeKind::kDmmpc,
                                         core::SchemeKind::kUwMpc,
                                         core::SchemeKind::kHpMot,
                                         core::SchemeKind::kHashed),
                       ::testing::Values(1u, 8u)),
    [](const ::testing::TestParamInfo<
        std::tuple<core::SchemeKind, std::uint32_t>>& info) {
      std::string name = core::to_string(std::get<0>(info.param));
      for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name + "_w" + std::to_string(std::get<1>(info.param));
    });

// Regression for the flagged_reads migration: reads under erasure served
// through serve(plan, ctx) must be flagged exactly as the step() path
// flags them — for the native serve overrides AND through the
// FaultableMemory wrapper (whose pre-v2 serve path computed flags
// internally and dropped them).
TEST(ServeContextFlags, ErasureFlagsIdenticalOnServeAndStepPaths) {
  const std::uint32_t n = 16;
  const faults::FaultSpec fault_spec{.seed = 99, .module_kill_rate = 0.6};
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
        core::SchemeKind::kHashed}) {
    const core::SchemeSpec spec{.kind = kind, .n = n, .seed = 5};
    // Native path: hooks installed directly on both instances.
    auto via_serve = core::make_memory(spec);
    auto via_step = core::make_memory(spec);
    const faults::FaultModel model(fault_spec, via_serve->num_modules());
    ASSERT_TRUE(via_serve->set_fault_hooks(&model));
    ASSERT_TRUE(via_step->set_fault_hooks(&model));

    util::Rng rng(41);
    pram::ServeContext ctx;
    core::PlanBuilder builder;
    std::uint64_t flagged_total = 0;
    for (int s = 0; s < 8; ++s) {
      const auto batch = pram::make_batch(pram::TraceFamily::kUniform, n,
                                          via_serve->size(), rng);
      const auto& plan = builder.build(batch, *via_serve);
      std::vector<pram::Word> serve_values(plan.reads.size());
      std::vector<pram::Word> step_values(plan.reads.size());
      ctx.bind(serve_values);
      via_serve->serve(plan, ctx);
      via_step->step(plan.reads, step_values, plan.writes);
      const auto step_flags = via_step->flagged_reads();
      ASSERT_EQ(ctx.flags().size(), step_flags.size())
          << core::to_string(kind) << " step " << s;
      for (std::size_t i = 0; i < step_flags.size(); ++i) {
        ASSERT_EQ(ctx.flags()[i] != 0, step_flags[i] != 0)
            << core::to_string(kind) << " step " << s << " read " << i;
        flagged_total += step_flags[i] != 0 ? 1 : 0;
      }
    }
    // A 60% module kill must flag something, or the test tests nothing.
    EXPECT_GT(flagged_total, 0u) << core::to_string(kind);
  }
}

TEST(ServeContextFlags, WrapperExposesFlagsThroughServeContext) {
  const std::uint32_t n = 16;
  const faults::FaultSpec fault_spec{.seed = 7, .module_kill_rate = 0.8};
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed,
        core::SchemeKind::kRanade}) {
    const core::SchemeSpec spec{.kind = kind, .n = n, .seed = 5};
    faults::FaultableMemory via_serve(core::make_memory(spec), fault_spec);
    faults::FaultableMemory via_step(core::make_memory(spec), fault_spec);

    util::Rng rng(43);
    pram::ServeContext ctx;
    core::PlanBuilder builder;
    std::uint64_t flagged_total = 0;
    for (int s = 0; s < 8; ++s) {
      const auto batch = pram::make_batch(pram::TraceFamily::kUniform, n,
                                          via_serve.size(), rng);
      const auto& plan = builder.build(batch, via_serve);
      std::vector<pram::Word> serve_values(plan.reads.size());
      std::vector<pram::Word> step_values(plan.reads.size());
      ctx.bind(serve_values);
      via_serve.serve(plan, ctx);
      via_step.step(plan.reads, step_values, plan.writes);
      const auto step_flags = via_step.flagged_reads();
      ASSERT_EQ(ctx.flags().size(), step_flags.size());
      for (std::size_t i = 0; i < step_flags.size(); ++i) {
        ASSERT_EQ(ctx.flags()[i] != 0, step_flags[i] != 0)
            << core::to_string(kind) << " step " << s << " read " << i;
        flagged_total += step_flags[i] != 0 ? 1 : 0;
      }
    }
    EXPECT_GT(flagged_total, 0u) << core::to_string(kind);
  }
}

}  // namespace
}  // namespace pramsim
