// Tests for the ideal P-RAM: ISA semantics, lock-step execution, conflict
// policies, the canonical program library, and trace generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "pram/machine.hpp"
#include "pram/memory_system.hpp"
#include "pram/program.hpp"
#include "pram/programs.hpp"
#include "pram/trace.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace pramsim::pram {
namespace {

Machine make_single(Program prog, std::uint64_t m = 16) {
  MachineConfig cfg;
  cfg.n_processors = 1;
  cfg.m_shared_cells = m;
  cfg.policy = ConflictPolicy::kErew;
  return Machine(cfg, std::move(prog));
}

// ------------------------------------------------------------- ISA ------

TEST(Isa, ArithmeticOps) {
  Program p;
  p.loadi(R1, 7).loadi(R2, 3);
  p.add(R3, R1, R2);   // 10
  p.sub(R4, R1, R2);   // 4
  p.mul(R5, R1, R2);   // 21
  p.div(R6, R1, R2);   // 2
  p.mod(R7, R1, R2);   // 1
  p.min(R8, R1, R2);   // 3
  p.max(R9, R1, R2);   // 7
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R3), 10);
  EXPECT_EQ(m.reg(ProcId(0), R4), 4);
  EXPECT_EQ(m.reg(ProcId(0), R5), 21);
  EXPECT_EQ(m.reg(ProcId(0), R6), 2);
  EXPECT_EQ(m.reg(ProcId(0), R7), 1);
  EXPECT_EQ(m.reg(ProcId(0), R8), 3);
  EXPECT_EQ(m.reg(ProcId(0), R9), 7);
}

TEST(Isa, BitwiseAndShift) {
  Program p;
  p.loadi(R1, 0b1100).loadi(R2, 0b1010).loadi(R3, 2);
  p.and_(R4, R1, R2);  // 0b1000
  p.or_(R5, R1, R2);   // 0b1110
  p.xor_(R6, R1, R2);  // 0b0110
  p.shl(R7, R1, R3);   // 0b110000
  p.shr(R8, R1, R3);   // 0b11
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R4), 0b1000);
  EXPECT_EQ(m.reg(ProcId(0), R5), 0b1110);
  EXPECT_EQ(m.reg(ProcId(0), R6), 0b0110);
  EXPECT_EQ(m.reg(ProcId(0), R7), 0b110000);
  EXPECT_EQ(m.reg(ProcId(0), R8), 0b11);
}

TEST(Isa, Comparisons) {
  Program p;
  p.loadi(R1, 5).loadi(R2, 9);
  p.slt(R3, R1, R2);
  p.sle(R4, R2, R2);
  p.seq(R5, R1, R2);
  p.sne(R6, R1, R2);
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R3), 1);
  EXPECT_EQ(m.reg(ProcId(0), R4), 1);
  EXPECT_EQ(m.reg(ProcId(0), R5), 0);
  EXPECT_EQ(m.reg(ProcId(0), R6), 1);
}

TEST(Isa, ImmediateForms) {
  Program p;
  p.loadi(R1, 10).addi(R2, R1, -3).muli(R3, R1, 4);
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R2), 7);
  EXPECT_EQ(m.reg(ProcId(0), R3), 40);
}

TEST(Isa, LocalMemoryRoundTrip) {
  Program p;
  p.loadi(R1, 123).loadi(R2, 5);
  p.lstore(R2, R1, 10);  // private[15] = 123
  p.lload(R3, R2, 10);   // R3 = private[15]
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R3), 123);
  EXPECT_EQ(m.private_mem(ProcId(0), 15), 123);
}

TEST(Isa, SharedMemoryRoundTrip) {
  Program p;
  p.loadi(R1, 42).loadi(R2, 3);
  p.swrite(R2, R1, 1);  // shared[4] = 42
  p.sread(R3, R2, 1);   // R3 = shared[4]
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R3), 42);
  EXPECT_EQ(m.shared(VarId(4)), 42);
}

TEST(Isa, JumpsAndLoops) {
  // Sum 1..10 with a loop.
  Program p;
  p.loadi(R1, 10).loadi(R2, 0);
  p.label("loop");
  p.add(R2, R2, R1);
  p.addi(R1, R1, -1);
  p.jnz(R1, "loop");
  p.halt();
  auto m = make_single(std::move(p));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.reg(ProcId(0), R2), 55);
}

TEST(Isa, DivisionByZeroFaults) {
  Program p;
  p.loadi(R1, 1).loadi(R2, 0).div(R3, R1, R2).halt();
  auto m = make_single(std::move(p));
  const auto out = m.run();
  EXPECT_EQ(out.final_status, StepStatus::kFault);
  ASSERT_TRUE(out.fault.has_value());
  EXPECT_NE(out.fault->what.find("zero"), std::string::npos);
}

TEST(Isa, SharedOutOfBoundsFaults) {
  Program p;
  p.loadi(R1, 99).sread(R2, R1).halt();
  auto m = make_single(std::move(p), /*m=*/16);
  const auto out = m.run();
  EXPECT_EQ(out.final_status, StepStatus::kFault);
}

TEST(Isa, ShiftOutOfRangeFaults) {
  Program p;
  p.loadi(R1, 1).loadi(R2, 64).shl(R3, R1, R2).halt();
  auto m = make_single(std::move(p));
  EXPECT_EQ(m.run().final_status, StepStatus::kFault);
}

TEST(Isa, UndefinedLabelThrows) {
  Program p;
  p.jmp("nowhere");
  EXPECT_THROW(p.finalize(), std::runtime_error);
}

TEST(Isa, DuplicateLabelThrows) {
  Program p;
  p.label("a").nop();
  EXPECT_THROW(p.label("a"), std::runtime_error);
}

TEST(Isa, DisassemblyListingMentionsOpcodes) {
  Program p;
  p.loadi(R1, 3).label("x").sread(R2, R1).jnz(R2, "x").halt();
  p.finalize();
  const auto listing = p.listing();
  EXPECT_NE(listing.find("loadi"), std::string::npos);
  EXPECT_NE(listing.find("sread"), std::string::npos);
  EXPECT_NE(listing.find("x:"), std::string::npos);
}

// ------------------------------------------------ machine semantics -----

TEST(Machine, PidAndNprocsDifferPerProcessor) {
  Program p;
  p.pid(R1).nprocs(R2).halt();
  MachineConfig cfg{.n_processors = 8, .m_shared_cells = 1,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(p));
  ASSERT_TRUE(m.run().completed());
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(m.reg(ProcId(i), R1), static_cast<Word>(i));
    EXPECT_EQ(m.reg(ProcId(i), R2), 8);
  }
}

TEST(Machine, ReadsSeePreStepValuesWithinOneStep) {
  // Two processors swap shared[0] and shared[1] simultaneously:
  // p0 reads shared[1] while p1 reads shared[0]; then they cross-write.
  // Correct synchronous semantics yield a swap with no temporary.
  Program p;
  p.pid(R1);
  p.loadi(R2, 1).sub(R2, R2, R1);  // other index = 1 - pid
  p.sread(R3, R2);                 // read other's cell (simultaneous)
  p.swrite(R1, R3);                // write own cell
  p.halt();
  MachineConfig cfg{.n_processors = 2, .m_shared_cells = 2,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(p));
  m.poke_shared(VarId(0), 111);
  m.poke_shared(VarId(1), 222);
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.shared(VarId(0)), 222);
  EXPECT_EQ(m.shared(VarId(1)), 111);
}

TEST(Machine, ErewDetectsConcurrentRead) {
  auto spec = programs::broadcast_read();
  MachineConfig cfg{.n_processors = 4, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  const auto out = m.run();
  EXPECT_EQ(out.final_status, StepStatus::kConflictViolation);
  ASSERT_TRUE(out.conflict.has_value());
  EXPECT_EQ(out.conflict->var, VarId(0));
  EXPECT_FALSE(out.conflict->involves_write);
}

TEST(Machine, CrewAllowsConcurrentRead) {
  auto spec = programs::broadcast_read();
  MachineConfig cfg{.n_processors = 4, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrew};
  Machine m(cfg, std::move(spec.program));
  m.poke_shared(VarId(0), 77);
  ASSERT_TRUE(m.run().completed());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.reg(ProcId(i), R2), 77);
  }
}

TEST(Machine, CrewDetectsConcurrentWrite) {
  auto spec = programs::common_write(5);
  MachineConfig cfg{.n_processors = 4, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrew};
  Machine m(cfg, std::move(spec.program));
  const auto out = m.run();
  EXPECT_EQ(out.final_status, StepStatus::kConflictViolation);
  ASSERT_TRUE(out.conflict.has_value());
  EXPECT_TRUE(out.conflict->involves_write);
}

TEST(Machine, CrcwCommonAcceptsAgreeingWrites) {
  auto spec = programs::common_write(5);
  MachineConfig cfg{.n_processors = 4, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrcwCommon};
  Machine m(cfg, std::move(spec.program));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.shared(VarId(0)), 5);
}

TEST(Machine, CrcwCommonRejectsDisagreeingWrites) {
  auto spec = programs::pid_write();
  MachineConfig cfg{.n_processors = 4, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrcwCommon};
  Machine m(cfg, std::move(spec.program));
  EXPECT_EQ(m.run().final_status, StepStatus::kConflictViolation);
}

TEST(Machine, CrcwPriorityLowestPidWins) {
  auto spec = programs::pid_write();
  MachineConfig cfg{.n_processors = 6, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrcwPriority};
  Machine m(cfg, std::move(spec.program));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.shared(VarId(0)), 0);
}

TEST(Machine, CrcwMaxLargestValueWins) {
  auto spec = programs::pid_write();
  MachineConfig cfg{.n_processors = 6, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrcwMax};
  Machine m(cfg, std::move(spec.program));
  ASSERT_TRUE(m.run().completed());
  EXPECT_EQ(m.shared(VarId(0)), 5);
}

TEST(Machine, DeadMachineStaysDead) {
  auto spec = programs::broadcast_read();
  MachineConfig cfg{.n_processors = 2, .m_shared_cells = 1,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  EXPECT_EQ(m.run().final_status, StepStatus::kConflictViolation);
  EXPECT_EQ(m.step().status, StepStatus::kFault);
}

TEST(Machine, RunStopsAtMaxSteps) {
  Program p;
  p.label("spin").jmp("spin");
  auto m = make_single(std::move(p));
  const auto out = m.run(100);
  EXPECT_EQ(out.final_status, StepStatus::kFault);
  EXPECT_EQ(out.steps, 100u);
}

// ----------------------------------------------------- program library --

class PrefixSumTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrefixSumTest, MatchesSerialScan) {
  const std::uint32_t n = GetParam();
  auto spec = programs::prefix_sum(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(1000 + n);
  std::vector<Word> input(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    input[i] = static_cast<Word>(rng.below(1000));
    m.poke_shared(VarId(i), input[i]);
  }
  const auto out = m.run();
  ASSERT_TRUE(out.completed()) << "n=" << n;
  Word acc = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    acc += input[i];
    EXPECT_EQ(m.shared(VarId(i)), acc) << "i=" << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u,
                                           64u, 100u, 128u));

class ReduceSumTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReduceSumTest, MatchesSerialSum) {
  const std::uint32_t n = GetParam();
  auto spec = programs::reduce_sum(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(2000 + n);
  Word expected = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Word v = static_cast<Word>(rng.below(10000));
    expected += v;
    m.poke_shared(VarId(i), v);
  }
  ASSERT_TRUE(m.run().completed()) << "n=" << n;
  EXPECT_EQ(m.shared(VarId(0)), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSumTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 17u, 32u, 63u,
                                           64u, 129u));

class ListRankTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ListRankTest, RanksARandomList) {
  const std::uint32_t n = GetParam();
  auto spec = programs::list_rank(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrew};
  Machine m(cfg, std::move(spec.program));
  // Build a random list: order[k] is the k-th node from the head.
  util::Rng rng(3000 + n);
  const auto order = rng.permutation(n);
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t node = order[k];
    const std::uint32_t succ = k + 1 < n ? order[k + 1] : node;  // tail loops
    m.poke_shared(VarId(node), succ);
    m.poke_shared(VarId(n + node), k + 1 < n ? 1 : 0);
  }
  ASSERT_TRUE(m.run().completed()) << "n=" << n;
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t node = order[k];
    EXPECT_EQ(m.shared(VarId(n + node)), static_cast<Word>(n - 1 - k))
        << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ListRankTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 9u, 16u, 31u, 64u,
                                           100u));

class OddEvenSortTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(OddEvenSortTest, SortsRandomInput) {
  const std::uint32_t n = GetParam();
  auto spec = programs::odd_even_sort(n);
  MachineConfig cfg{.n_processors = n, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kErew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(4000 + n);
  std::vector<Word> input(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    input[i] = static_cast<Word>(rng.below(500));
    m.poke_shared(VarId(i), input[i]);
  }
  ASSERT_TRUE(m.run(4'000'000).completed()) << "n=" << n;
  std::sort(input.begin(), input.end());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.shared(VarId(i)), input[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OddEvenSortTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 15u, 16u, 32u,
                                           50u));

class MatvecTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MatvecTest, MatchesSerialProduct) {
  const std::uint32_t N = GetParam();
  auto spec = programs::matvec(N);
  MachineConfig cfg{.n_processors = N, .m_shared_cells = spec.m_required,
                    .policy = ConflictPolicy::kCrew};
  Machine m(cfg, std::move(spec.program));
  util::Rng rng(5000 + N);
  std::vector<Word> A(static_cast<std::size_t>(N) * N);
  std::vector<Word> x(N);
  for (std::uint32_t i = 0; i < N * N; ++i) {
    A[i] = static_cast<Word>(rng.below(20)) - 10;
    m.poke_shared(VarId(i), A[i]);
  }
  for (std::uint32_t j = 0; j < N; ++j) {
    x[j] = static_cast<Word>(rng.below(20)) - 10;
    m.poke_shared(VarId(N * N + j), x[j]);
  }
  ASSERT_TRUE(m.run().completed()) << "N=" << N;
  for (std::uint32_t i = 0; i < N; ++i) {
    Word expect = 0;
    for (std::uint32_t j = 0; j < N; ++j) {
      expect += A[static_cast<std::size_t>(i) * N + j] * x[j];
    }
    EXPECT_EQ(m.shared(VarId(N * N + N + i)), expect) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatvecTest,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 24u));

// --------------------------------------------------------- traces -------

// Registry round-trip: every TraceFamily enumerator must have a
// to_string name and appear in all_trace_families() — the guard that
// keeps new families (like kZipfian/kWorkingSet) wired into sweeps,
// benches, and spec parsing rather than silently skipped.
TEST(Trace, FamilyRegistryRoundTrips) {
  const auto& all = all_trace_families();
  EXPECT_EQ(all.size(), kTraceFamilyCount);
  std::set<std::string> names;
  for (std::size_t i = 0; i < kTraceFamilyCount; ++i) {
    const auto family = static_cast<TraceFamily>(i);
    const std::string name = to_string(family);
    EXPECT_NE(name, "???") << "enumerator " << i << " missing a name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate family name " << name;
    EXPECT_NE(std::find(all.begin(), all.end(), family), all.end())
        << name << " missing from all_trace_families()";
  }
  // The EREW-safe subset is a subset of the registry.
  for (const auto family : exclusive_trace_families()) {
    EXPECT_NE(std::find(all.begin(), all.end(), family), all.end());
  }
}

TEST(Trace, PermutationVariablesDistinct) {
  util::Rng rng(9);
  const auto batch =
      make_batch(TraceFamily::kPermutation, 64, 1024, rng);
  ASSERT_EQ(batch.size(), 64u);
  std::set<std::uint32_t> vars;
  for (const auto& a : batch) {
    vars.insert(a.var.value());
    EXPECT_LT(a.var.value(), 1024u);
  }
  EXPECT_EQ(vars.size(), 64u);
}

TEST(Trace, StrideWithUnitStrideIsContiguous) {
  util::Rng rng(9);
  TraceParams params;
  params.stride = 1;
  params.offset = 5;
  const auto batch = make_batch(TraceFamily::kStride, 16, 64, rng, params);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(batch[p].var.value(), 5 + p);
  }
}

TEST(Trace, BitReversalDistinct) {
  util::Rng rng(9);
  const auto batch = make_batch(TraceFamily::kBitReversal, 32, 32, rng);
  std::set<std::uint32_t> vars;
  for (const auto& a : batch) {
    vars.insert(a.var.value());
  }
  EXPECT_EQ(vars.size(), 32u);
}

TEST(Trace, BroadcastAllReadVarZero) {
  util::Rng rng(9);
  const auto batch = make_batch(TraceFamily::kBroadcast, 8, 64, rng);
  for (const auto& a : batch) {
    EXPECT_EQ(a.var.value(), 0u);
    EXPECT_EQ(a.op, AccessOp::kRead);
  }
}

TEST(Trace, HotspotConcentratesAccesses) {
  util::Rng rng(9);
  TraceParams params;
  params.hotspot_fraction = 0.9;
  params.hotset_size = 2;
  int hot = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto batch =
        make_batch(TraceFamily::kHotspot, 100, 10'000, rng, params);
    for (const auto& a : batch) {
      hot += a.var.value() < 2 ? 1 : 0;
    }
  }
  // ~90% of 2000 accesses should be hot.
  EXPECT_GT(hot, 1500);
}

TEST(Trace, WriteFractionRespected) {
  util::Rng rng(9);
  TraceParams params;
  params.write_fraction = 1.0;
  auto batch = make_batch(TraceFamily::kPermutation, 64, 256, rng, params);
  for (const auto& a : batch) {
    EXPECT_EQ(a.op, AccessOp::kWrite);
  }
  params.write_fraction = 0.0;
  batch = make_batch(TraceFamily::kPermutation, 64, 256, rng, params);
  for (const auto& a : batch) {
    EXPECT_EQ(a.op, AccessOp::kRead);
  }
}

TEST(Trace, MultiStepTraceHasRequestedLength) {
  util::Rng rng(9);
  const auto trace = make_trace(TraceFamily::kUniform, 16, 64, 10, rng);
  EXPECT_EQ(trace.size(), 10u);
  for (const auto& batch : trace) {
    EXPECT_EQ(batch.size(), 16u);
  }
}

TEST(Trace, ZipfianSkewConcentratesOnHead) {
  util::Rng rng(9);
  TraceParams params;
  params.zipf_exponent = 1.4;
  int head = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto batch =
        make_batch(TraceFamily::kZipfian, 100, 10'000, rng, params);
    for (const auto& a : batch) {
      ASSERT_LT(a.var.value(), 10'000u);
      head += a.var.value() < 100 ? 1 : 0;
      ++total;
    }
  }
  // At s = 1.4 the first 1% of the address space should draw well over
  // half the traffic; a uniform draw would land ~1% there.
  EXPECT_GT(head, total / 2);
}

TEST(Trace, ZipfianLowExponentApproachesUniform) {
  util::Rng rng(9);
  TraceParams params;
  params.zipf_exponent = 0.05;
  int head = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto batch =
        make_batch(TraceFamily::kZipfian, 100, 10'000, rng, params);
    for (const auto& a : batch) {
      head += a.var.value() < 100 ? 1 : 0;
      ++total;
    }
  }
  // Near-zero skew: the 1% head should take nowhere near half.
  EXPECT_LT(head, total / 4);
}

TEST(Trace, WorkingSetRotatesItsWindow) {
  util::Rng rng(9);
  TraceParams params;
  params.working_set_size = 32;
  params.working_set_period = 4;
  params.working_set_fraction = 1.0;
  const std::uint64_t m = 100'000;
  const auto trace =
      make_trace(TraceFamily::kWorkingSet, 64, m, 12, rng, params);
  // With fraction 1.0 every access in one period lands in one 32-wide
  // window; successive periods use different (hash-placed) windows.
  std::set<std::uint64_t> bases;
  for (std::size_t s = 0; s < trace.size(); s += params.working_set_period) {
    std::uint64_t lo = m;
    for (const auto& a : trace[s]) {
      lo = std::min<std::uint64_t>(lo, a.var.value());
    }
    for (const auto& a : trace[s]) {
      ASSERT_LT(a.var.value() - lo, params.working_set_size);
    }
    bases.insert(lo);
  }
  EXPECT_GT(bases.size(), 1u) << "window never moved across periods";
}

TEST(Trace, DeterministicGivenSeed) {
  util::Rng rng_a(123);
  util::Rng rng_b(123);
  const auto a = make_trace(TraceFamily::kUniform, 32, 256, 5, rng_a);
  const auto b = make_trace(TraceFamily::kUniform, 32, 256, 5, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    for (std::size_t i = 0; i < a[s].size(); ++i) {
      EXPECT_EQ(a[s][i].var, b[s][i].var);
      EXPECT_EQ(a[s][i].op, b[s][i].op);
      EXPECT_EQ(a[s][i].value, b[s][i].value);
    }
  }
}

// ------------------------------------------------------ flat memory -----

TEST(FlatMemory, ReadsSeePreStepState) {
  FlatMemory mem(4);
  mem.poke(VarId(0), 10);
  const VarId reads[] = {VarId(0)};
  Word values[1] = {0};
  const VarWrite writes[] = {{VarId(0), 99}};
  mem.step(reads, values, writes);
  EXPECT_EQ(values[0], 10);       // read the pre-step value
  EXPECT_EQ(mem.peek(VarId(0)), 99);  // write committed after
}

TEST(FlatMemory, UnitTimePerStep) {
  FlatMemory mem(8);
  const VarId reads[] = {VarId(1), VarId(2), VarId(3)};
  Word values[3];
  const auto cost = mem.step(reads, values, {});
  EXPECT_EQ(cost.time, 1u);
  EXPECT_EQ(cost.work, 3u);
}

}  // namespace
}  // namespace pramsim::pram
