// Unit and property tests for src/util.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "util/bitset.hpp"
#include "util/fit.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/strong_id.hpp"
#include "util/table.hpp"

namespace pramsim::util {
namespace {

// ---------------------------------------------------------------- math ----

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_floor(1023), 9);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_floor(~0ULL), 63);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(1ULL << 40), 40);
  EXPECT_EQ(ilog2_ceil((1ULL << 40) + 1), 41);
}

TEST(Math, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(10, 0), 1u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(1, 63), 1u);
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1ULL << 62), 1ULL << 31);
}

TEST(Math, LnBinomialMatchesSmallExactValues) {
  // C(10, 3) = 120, C(52, 5) = 2598960.
  EXPECT_NEAR(std::exp(ln_binomial(10, 3)), 120.0, 1e-6);
  EXPECT_NEAR(std::exp(ln_binomial(52, 5)), 2598960.0, 1e-3);
}

TEST(Math, LnBinomialOutOfRangeIsMinusInf) {
  EXPECT_EQ(ln_binomial(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(ln_binomial(5, -1), -std::numeric_limits<double>::infinity());
}

TEST(Math, Log2BinomialSymmetry) {
  for (int n = 2; n <= 40; n += 7) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(log2_binomial(n, k), log2_binomial(n, n - k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Math, LnAddExp) {
  EXPECT_NEAR(ln_add_exp(std::log(3.0), std::log(5.0)), std::log(8.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(ln_add_exp(ninf, 2.0), 2.0);
  EXPECT_EQ(ln_add_exp(2.0, ninf), 2.0);
}

TEST(Math, LogSqOverLoglogMonotone) {
  double prev = 0.0;
  for (double n : {16.0, 64.0, 256.0, 1024.0, 65536.0}) {
    const double v = log2_sq_over_loglog(n);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRangeAndCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (const auto v : p) {
    ASSERT_LT(v, 257u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(1000, 64);
    ASSERT_EQ(sample.size(), 64u);
    std::set<std::uint64_t> s(sample.begin(), sample.end());
    ASSERT_EQ(s.size(), 64u);
    for (const auto v : sample) {
      ASSERT_LT(v, 1000u);
    }
  }
}

TEST(Rng, SampleFullRange) {
  Rng rng(13);
  auto sample = rng.sample_without_replacement(16, 16);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sample[i], i);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent(77);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += parent.next() == child.next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

// -------------------------------------------------------------- bitset ----

TEST(Bitset, SetTestReset) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_TRUE(bs.none());
  bs.set(0);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 3u);
  bs.reset(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(Bitset, SetAllRespectsSize) {
  DynamicBitset bs(70);
  bs.set_all();
  EXPECT_EQ(bs.count(), 70u);
}

TEST(Bitset, ConstructAllOnes) {
  DynamicBitset bs(65, true);
  EXPECT_EQ(bs.count(), 65u);
}

TEST(Bitset, FindNextScansCorrectly) {
  DynamicBitset bs(200);
  bs.set(3);
  bs.set(77);
  bs.set(199);
  EXPECT_EQ(bs.find_next(0), 3u);
  EXPECT_EQ(bs.find_next(3), 3u);
  EXPECT_EQ(bs.find_next(4), 77u);
  EXPECT_EQ(bs.find_next(78), 199u);
  EXPECT_EQ(bs.find_next(200), 200u);
  bs.reset(199);
  EXPECT_EQ(bs.find_next(78), 200u);
}

TEST(Bitset, FindNextIterationVisitsAllSetBits) {
  DynamicBitset bs(500);
  std::set<std::size_t> expected;
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.below(500);
    bs.set(v);
    expected.insert(v);
  }
  std::set<std::size_t> visited;
  for (std::size_t i = bs.find_next(0); i < bs.size(); i = bs.find_next(i + 1)) {
    visited.insert(i);
  }
  EXPECT_EQ(visited, expected);
}

// --------------------------------------------------------------- stats ----

TEST(Stats, RunningStatsBasics) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(Stats, MergeMatchesSequential) {
  Rng rng(33);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Stats, HistogramCountsAndOverflow) {
  Histogram h(10);
  for (std::uint64_t i = 0; i < 20; ++i) {
    h.add(i);
  }
  EXPECT_EQ(h.total(), 20u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.overflow(), 9u);  // 11..19
  EXPECT_FALSE(h.ascii().empty());
}

// ----------------------------------------------------------------- fit ----

TEST(Fit, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, IdentifiesLogShape) {
  std::vector<double> n;
  std::vector<double> y;
  for (double v : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0}) {
    n.push_back(v);
    y.push_back(3.0 + 2.5 * std::log2(v));
  }
  EXPECT_EQ(best_shape(n, y), "log n");
}

TEST(Fit, IdentifiesLogSqOverLoglogShape) {
  std::vector<double> n;
  std::vector<double> y;
  for (double v : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    const double l = std::log2(v);
    n.push_back(v);
    y.push_back(1.0 + 0.7 * l * l / std::log2(l));
  }
  EXPECT_EQ(best_shape(n, y), "log^2 n/loglog n");
}

TEST(Fit, IdentifiesConstantShape) {
  std::vector<double> n{16, 64, 256, 1024, 4096};
  std::vector<double> y{5.0, 5.0, 5.0, 5.0, 5.0};
  const auto fits = fit_shapes(n, y);
  // All shapes fit a constant perfectly with slope ~0; the constant shape
  // must be among the ties at R^2 = 1.
  EXPECT_NEAR(fits.front().fit.r_squared, 1.0, 1e-9);
}

// --------------------------------------------------------------- table ----

TEST(Table, RendersAlignedAsciiAndCsv) {
  Table t({"scheme", "n", "time"});
  t.set_title("demo");
  t.add_row({std::string("HP-2DMOT"), std::int64_t{256}, 12.5});
  t.add_row({std::string("LPP"), std::int64_t{1024}, 99.125});
  const auto s = t.to_string(2);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("HP-2DMOT"), std::string::npos);
  EXPECT_NE(s.find("99.12"), std::string::npos);
  const auto csv = t.to_csv(3);
  EXPECT_NE(csv.find("scheme,n,time"), std::string::npos);
  EXPECT_NE(csv.find("LPP,1024,99.125"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
}

// ----------------------------------------------------------- strong id ----

TEST(StrongId, DistinctTypesAndOrdering) {
  const ProcId p1(3);
  const ProcId p2(5);
  EXPECT_LT(p1, p2);
  EXPECT_EQ(p1.value(), 3u);
  EXPECT_EQ(p1.index(), 3u);
  static_assert(!std::is_convertible_v<ProcId, ModuleId>);
  static_assert(!std::is_convertible_v<std::uint32_t, ProcId>);
}

// ----------------------------------------------------------- stopwatch ---

TEST(Stopwatch, FakeClockMakesElapsedExact) {
  set_fake_clock_override(/*start_ns=*/500, /*tick_ns=*/10);
  ASSERT_TRUE(fake_clock_active());
  // Construction reads the clock once; each elapsed query reads it once
  // more, so consecutive reads advance by exactly one tick.
  Stopwatch watch;
  EXPECT_EQ(watch.elapsed_ns(), 10u);
  EXPECT_EQ(watch.elapsed_ns(), 20u);
  watch.restart();
  EXPECT_EQ(watch.elapsed_ns(), 10u);
  // elapsed_seconds() is one more clock query, so one more tick.
  EXPECT_DOUBLE_EQ(watch.elapsed_seconds(), 20e-9);
  clear_fake_clock_override();
  EXPECT_FALSE(fake_clock_active());
}

TEST(Stopwatch, RealClockIsMonotone) {
  const Stopwatch watch;
  const auto first = watch.elapsed_ns();
  const auto second = watch.elapsed_ns();
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace pramsim::util
