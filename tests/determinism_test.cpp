// Determinism regression gate for the sharded, double-buffered pipeline:
// run_stress / run_with_faults results must be bit-identical for the same
// spec at 1 worker thread and at hardware_concurrency workers — both at
// the trial level and with the within-trial (trial, family) sharding —
// and with the double-buffered plan generator on or off.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "core/schemes.hpp"
#include "durability/recovery.hpp"
#include "faults/fault_model.hpp"
#include "obs/export.hpp"
#include "pram/snapshot.hpp"
#include "util/parallel.hpp"

namespace pramsim {
namespace {

/// Restore the automatic worker policy even when an assertion fails.
struct WorkerOverrideGuard {
  ~WorkerOverrideGuard() { util::set_parallel_workers_override(0); }
};

void expect_stats_identical(const util::RunningStats& a,
                            const util::RunningStats& b,
                            const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_DOUBLE_EQ(a.mean(), b.mean()) << what;
  EXPECT_DOUBLE_EQ(a.sum(), b.sum()) << what;
  EXPECT_DOUBLE_EQ(a.min(), b.min()) << what;
  EXPECT_DOUBLE_EQ(a.max(), b.max()) << what;
  EXPECT_DOUBLE_EQ(a.variance(), b.variance()) << what;
}

void expect_identical(const core::TraceRunResult& a,
                      const core::TraceRunResult& b, const char* what) {
  EXPECT_EQ(a.steps, b.steps) << what;
  expect_stats_identical(a.time, b.time, what);
  expect_stats_identical(a.work, b.work, what);
  expect_stats_identical(a.live_after_stage1, b.live_after_stage1, what);
  expect_stats_identical(a.max_queue, b.max_queue, what);
  EXPECT_DOUBLE_EQ(a.storage_factor, b.storage_factor) << what;
  EXPECT_EQ(a.reliability.reads_served, b.reliability.reads_served) << what;
  EXPECT_EQ(a.reliability.wrong_reads, b.reliability.wrong_reads) << what;
  EXPECT_EQ(a.reliability.faults_masked, b.reliability.faults_masked) << what;
  EXPECT_EQ(a.reliability.erasures_skipped, b.reliability.erasures_skipped)
      << what;
  EXPECT_EQ(a.reliability.uncorrectable, b.reliability.uncorrectable) << what;
  EXPECT_EQ(a.reliability.writes_dropped, b.reliability.writes_dropped)
      << what;
  EXPECT_EQ(a.reliability.corrupt_stores, b.reliability.corrupt_stores)
      << what;
}

std::size_t many_workers() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 4);
}

TEST(Determinism, StressBitIdenticalAcrossWorkerCounts) {
  WorkerOverrideGuard guard;
  for (const auto kind : {core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
                          core::SchemeKind::kHashed}) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 3});
    // trials = 1 exercises pure within-trial (family) sharding; trials =
    // 3 exercises both levels at once.
    for (const std::size_t trials : {std::size_t{1}, std::size_t{3}}) {
      const core::StressOptions options{
          .steps_per_family = 2, .seed = 9, .trials = trials};
      util::set_parallel_workers_override(1);
      const auto serial = pipeline.run_stress(options);
      util::set_parallel_workers_override(many_workers());
      const auto parallel = pipeline.run_stress(options);
      util::set_parallel_workers_override(0);
      EXPECT_GT(serial.steps, 0u);
      expect_identical(serial, parallel, core::to_string(kind));
    }
  }
}

TEST(Determinism, FaultRunBitIdenticalAcrossWorkerCounts) {
  WorkerOverrideGuard guard;
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed}) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 3});
    const faults::FaultSpec spec{
        .seed = 41, .module_kill_rate = 0.2, .corruption_rate = 0.1};
    const core::StressOptions options{
        .steps_per_family = 2, .seed = 13, .trials = 3};
    util::set_parallel_workers_override(1);
    const auto serial = pipeline.run_with_faults(spec, options);
    util::set_parallel_workers_override(many_workers());
    const auto parallel = pipeline.run_with_faults(spec, options);
    util::set_parallel_workers_override(0);
    EXPECT_GT(serial.reliability.reads_served, 0u);
    expect_identical(serial, parallel, core::to_string(kind));
  }
}

TEST(Determinism, DoubleBufferingDoesNotChangeResults) {
  for (const auto kind : {core::SchemeKind::kDmmpc, core::SchemeKind::kIda,
                          core::SchemeKind::kHashed}) {
    core::SimulationPipeline pipeline({.kind = kind, .n = 16, .seed = 3});
    // steps_per_family >= 4 so the generator thread actually engages.
    core::StressOptions options{.steps_per_family = 6, .seed = 21};
    options.double_buffer = true;
    const auto buffered = pipeline.run_stress(options);
    options.double_buffer = false;
    const auto serial = pipeline.run_stress(options);
    expect_identical(buffered, serial, core::to_string(kind));
  }
}

// ----- Engine API v2: group-parallel serve inside the pipeline ---------

// The kGroupParallel backend must not change ANY pipeline result — not
// versus the serial backend, and not across executor worker counts. The
// worker override steers both the shard-level parallel_for AND the
// intra-step group fan-out, so this pins determinism at both levels at
// once.
TEST(Determinism, GroupParallelBackendBitIdenticalAcrossWorkersAndBackends) {
  WorkerOverrideGuard guard;
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed}) {
    core::SchemeSpec spec{.kind = kind, .n = 16, .seed = 3};
    const core::StressOptions options{
        .steps_per_family = 4, .seed = 9, .trials = 2};

    spec.backend = pram::ServeBackend::kSerial;
    core::SimulationPipeline serial_pipeline(spec);
    const auto serial = serial_pipeline.run_stress(options);

    spec.backend = pram::ServeBackend::kGroupParallel;
    core::SimulationPipeline gp_pipeline(spec);
    ASSERT_EQ(gp_pipeline.scheme().backend,
              pram::ServeBackend::kGroupParallel)
        << core::to_string(kind);
    util::set_parallel_workers_override(1);
    const auto gp_serial_workers = gp_pipeline.run_stress(options);
    util::set_parallel_workers_override(many_workers());
    const auto gp_many_workers = gp_pipeline.run_stress(options);
    util::set_parallel_workers_override(0);

    expect_identical(serial, gp_serial_workers, core::to_string(kind));
    expect_identical(serial, gp_many_workers, core::to_string(kind));
  }
}

// Scrub interleaved with the double-buffered pipeline under the context
// API: dynamic-onset faults land mid-run, the driver scrubs every other
// step, and the whole thing must stay bit-identical at any worker count,
// with the group-parallel backend serving inside the shards.
TEST(Determinism, ScrubbedGroupParallelStressBitIdenticalAcrossWorkerCounts) {
  WorkerOverrideGuard guard;
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed}) {
    core::SchemeSpec spec{.kind = kind, .n = 16, .seed = 3};
    spec.backend = pram::ServeBackend::kGroupParallel;
    core::SimulationPipeline pipeline(spec);
    const faults::FaultSpec fault_spec{.seed = 41,
                                       .module_kill_rate = 0.25,
                                       .corruption_rate = 0.1,
                                       .onset_min = 2,
                                       .onset_max = 5};
    core::StressOptions options{.steps_per_family = 6, .seed = 13,
                                .trials = 2};
    options.scrub_interval = 2;
    options.scrub_budget = 64;

    util::set_parallel_workers_override(1);
    const auto serial = pipeline.run_with_faults(fault_spec, options);
    util::set_parallel_workers_override(many_workers());
    const auto parallel = pipeline.run_with_faults(fault_spec, options);
    util::set_parallel_workers_override(0);
    EXPECT_GT(serial.reliability.reads_served, 0u);
    expect_identical(serial, parallel, core::to_string(kind));

    // Double buffering on top must change nothing either.
    options.double_buffer = false;
    const auto unbuffered = pipeline.run_with_faults(fault_spec, options);
    expect_identical(serial, unbuffered, core::to_string(kind));
  }
}

// ----- observability: the metrics + journal determinism contract -------

// The deterministic obs snapshot (include_timings = false: counters,
// gauges, histograms, phase counts, journal contents) must be BYTE
// identical across executor worker counts {1, 2, 4} and across reruns of
// the same seed — the per-shard sinks fold in shard order, and the
// journal commits each step in canonical order regardless of how the
// group fan-out interleaved.
TEST(Determinism, ObsSnapshotBitIdenticalAcrossWorkersAndReruns) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "compiled with PRAMSIM_OBS=OFF";
  }
  WorkerOverrideGuard guard;
  for (const auto kind :
       {core::SchemeKind::kDmmpc, core::SchemeKind::kHashed}) {
    core::SchemeSpec spec{.kind = kind, .n = 16, .seed = 3};
    spec.backend = pram::ServeBackend::kGroupParallel;
    core::SimulationPipeline pipeline(spec);
    const faults::FaultSpec fault_spec{.seed = 41,
                                       .module_kill_rate = 0.25,
                                       .corruption_rate = 0.1,
                                       .onset_min = 2,
                                       .onset_max = 5};
    core::StressOptions options{.steps_per_family = 6, .seed = 13,
                                .trials = 2};
    options.scrub_interval = 2;
    options.scrub_budget = 64;
    options.obs_enabled = true;

    obs::SnapshotOptions snapshot;
    snapshot.include_timings = false;

    std::string reference;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      util::set_parallel_workers_override(workers);
      auto run = pipeline.run_with_faults(fault_spec, options);
      const std::string json = obs::to_json(run.obs, snapshot);
      if (reference.empty()) {
        reference = json;
        EXPECT_NE(reference.find("\"events\": [{"), std::string::npos)
            << core::to_string(kind) << ": journal should not be empty";
      } else {
        EXPECT_EQ(json, reference)
            << core::to_string(kind) << " at " << workers << " workers";
      }
    }
    util::set_parallel_workers_override(0);

    // Rerun at the automatic worker policy: still byte-identical.
    auto rerun = pipeline.run_with_faults(fault_spec, options);
    EXPECT_EQ(obs::to_json(rerun.obs, snapshot), reference)
        << core::to_string(kind) << " rerun";
  }
}

// ----- durability: crash recovery is deterministic and idempotent ------

void expect_crash_identical(const core::CrashRecoveryResult& a,
                            const core::CrashRecoveryResult& b,
                            const std::string& what) {
  EXPECT_EQ(a.kill_step, b.kill_step) << what;
  EXPECT_EQ(a.durable_step, b.durable_step) << what;
  EXPECT_EQ(a.bit_exact, b.bit_exact) << what;
  EXPECT_EQ(a.vars_checked, b.vars_checked) << what;
  EXPECT_EQ(a.lost_committed_writes, b.lost_committed_writes) << what;
  EXPECT_EQ(a.recovery.checkpoint_loaded, b.recovery.checkpoint_loaded)
      << what;
  EXPECT_EQ(a.recovery.checkpoint_step, b.recovery.checkpoint_step) << what;
  EXPECT_EQ(a.recovery.replayed_records, b.recovery.replayed_records) << what;
  EXPECT_EQ(a.recovery.replayed_writes, b.recovery.replayed_writes) << what;
  EXPECT_EQ(a.recovery.skipped_records, b.recovery.skipped_records) << what;
  EXPECT_EQ(a.recovery.torn_wal_tail, b.recovery.torn_wal_tail) << what;
  EXPECT_EQ(a.recovery.recovered_step, b.recovery.recovered_step) << what;
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes) << what;
  EXPECT_EQ(a.wal_bytes, b.wal_bytes) << what;
}

// The whole crash-and-recover trajectory — kill step, durable horizon,
// checkpoint/WAL byte counts, replay record counts, bit-exactness — must
// not depend on the executor worker count, including with the
// group-parallel serve backend fanning out inside each step.
TEST(Determinism, CrashRecoveryBitIdenticalAcrossWorkerCounts) {
  WorkerOverrideGuard guard;
  std::vector<core::SchemeSpec> specs = {
      {.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3},
      {.kind = core::SchemeKind::kIda, .n = 16, .seed = 3},
  };
  core::SchemeSpec gp{.kind = core::SchemeKind::kDmmpc, .n = 16, .seed = 3};
  gp.backend = pram::ServeBackend::kGroupParallel;
  specs.push_back(gp);

  std::size_t index = 0;
  for (const auto& spec : specs) {
    core::SimulationPipeline pipeline(spec);
    if (spec.backend == pram::ServeBackend::kGroupParallel) {
      ASSERT_EQ(pipeline.scheme().backend, pram::ServeBackend::kGroupParallel);
    }
    core::CrashRecoveryOptions options;
    options.steps = 20;
    options.seed = 17;
    options.kill_point = core::KillPoint::kMidWalAppend;
    options.durability.directory =
        std::string(::testing::TempDir()) + "/determinism_crash_" +
        std::to_string(index);

    std::vector<core::CrashRecoveryResult> results;
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      util::set_parallel_workers_override(workers);
      results.push_back(pipeline.run_crash_recovery(options));
    }
    util::set_parallel_workers_override(0);

    EXPECT_TRUE(results[0].bit_exact) << "spec " << index;
    const std::string what = "spec " + std::to_string(index);
    expect_crash_identical(results[0], results[1], what + " @2 workers");
    expect_crash_identical(results[0], results[2], what + " @4 workers");
    ++index;
  }
}

// Recovery must be idempotent: recovering the SAME on-disk state twice
// into one machine, or once into another, yields byte-identical
// snapshots. The WAL replays absolute committed values, so a recovery
// that itself crashes and reruns cannot drift.
TEST(Determinism, RecoveryIsIdempotentOverTheSameDiskState) {
  const core::SchemeSpec spec{.kind = core::SchemeKind::kDmmpc,
                              .n = 16,
                              .seed = 3};
  core::SimulationPipeline pipeline(spec);
  core::CrashRecoveryOptions options;
  options.steps = 20;
  options.seed = 23;
  options.kill_point = core::KillPoint::kAfterWalFlush;
  options.durability.directory =
      std::string(::testing::TempDir()) + "/determinism_idempotent";
  const auto result = pipeline.run_crash_recovery(options);
  ASSERT_TRUE(result.bit_exact);

  // run_crash_recovery leaves the WAL and checkpoints on disk; recover
  // from them by hand, repeatedly.
  const std::string wal_path = options.durability.directory + "/wal.log";
  const auto snapshot_of = [](pram::MemorySystem& memory) {
    pram::BufferSink sink;
    memory.snapshot(sink);
    return sink.take();
  };

  auto once = core::make_memory(spec);
  (void)durability::recover(*once, wal_path, options.durability.directory);
  const auto bytes_once = snapshot_of(*once);

  // Second recovery of the SAME machine: nothing changes.
  const auto again = durability::recover(*once, wal_path,
                                         options.durability.directory);
  EXPECT_EQ(again.recovered_step, result.recovery.recovered_step);
  EXPECT_EQ(snapshot_of(*once), bytes_once);

  // A fresh machine recovered once lands on the same bytes.
  auto fresh = core::make_memory(spec);
  (void)durability::recover(*fresh, wal_path, options.durability.directory);
  EXPECT_EQ(snapshot_of(*fresh), bytes_once);
}

}  // namespace
}  // namespace pramsim
