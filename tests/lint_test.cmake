# pramlint under ctest: the fixture suite proves every rule still fires
# (and every exemption still holds), the whole-tree run proves the tree
# itself is clean modulo the reasoned allowlist. Both gate tier-1.
# Included from the top-level CMakeLists.txt when a Python interpreter
# is available; PRAMSIM_SOURCE_DIR is the repository root.

add_test(NAME lint_selftest
  COMMAND ${Python3_EXECUTABLE}
          ${PRAMSIM_SOURCE_DIR}/tools/lint/pramlint.py --self-test)

add_test(NAME lint_tree
  COMMAND ${Python3_EXECUTABLE}
          ${PRAMSIM_SOURCE_DIR}/tools/lint/pramlint.py
          ${PRAMSIM_SOURCE_DIR})
