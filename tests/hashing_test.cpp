// Tests for universal hashing and the Mehlhorn-Vishkin probabilistic
// baseline memory.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "hashing/mv_memory.hpp"
#include "hashing/universal.hpp"
#include "util/rng.hpp"

namespace pramsim::hashing {
namespace {

using pram::VarWrite;
using pram::Word;

TEST(Mersenne61, ReduceIsCongruent) {
  util::Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto x = rng.next() >> 1;  // < 2^63
    const auto r = reduce_m61(x);
    EXPECT_LT(r, kMersenne61);
    EXPECT_EQ(r % kMersenne61, x % kMersenne61);
  }
}

TEST(Mersenne61, MulModMatchesNaive128) {
  util::Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto a = rng.below(kMersenne61);
    const auto b = rng.below(kMersenne61);
    const auto expect = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a) * b) % kMersenne61);
    EXPECT_EQ(mul_mod_m61(a, b), expect);
  }
}

TEST(PolynomialHash, StaysInRange) {
  util::Rng rng(7);
  PolynomialHash h(2, 100, rng);
  for (std::uint64_t x = 0; x < 10'000; ++x) {
    EXPECT_LT(h(x), 100u);
  }
}

TEST(PolynomialHash, RoughlyUniform) {
  util::Rng rng(9);
  PolynomialHash h(2, 16, rng);
  std::vector<std::uint32_t> counts(16, 0);
  const int total = 160'000;
  for (int x = 0; x < total; ++x) {
    ++counts[h(static_cast<std::uint64_t>(x))];
  }
  for (const auto cnt : counts) {
    EXPECT_NEAR(cnt, total / 16.0, total / 16.0 * 0.1);
  }
}

TEST(PolynomialHash, DifferentSeedsDifferentFunctions) {
  util::Rng rng1(1);
  util::Rng rng2(2);
  PolynomialHash h1(2, 1 << 20, rng1);
  PolynomialHash h2(2, 1 << 20, rng2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) {
    same += h1(x) == h2(x) ? 1 : 0;
  }
  EXPECT_LT(same, 20);
}

TEST(MvMemory, OracleConsistency) {
  MvMemory mem(1024, {.n_modules = 32, .k_wise = 2, .seed = 3});
  std::map<std::uint32_t, Word> oracle;
  util::Rng rng(11);
  for (int step = 0; step < 100; ++step) {
    std::set<std::uint32_t> rset;
    std::set<std::uint32_t> wset;
    for (std::uint64_t i = 0, k = rng.below(20); i < k; ++i) {
      rset.insert(static_cast<std::uint32_t>(rng.below(1024)));
    }
    for (std::uint64_t i = 0, k = rng.below(20); i < k; ++i) {
      wset.insert(static_cast<std::uint32_t>(rng.below(1024)));
    }
    std::vector<VarId> reads(rset.begin(), rset.end());
    std::vector<VarWrite> writes;
    for (const auto v : wset) {
      writes.push_back({VarId(v), static_cast<Word>(rng.below(1 << 20))});
    }
    std::vector<Word> values(reads.size());
    mem.step(reads, values, writes);
    for (std::size_t i = 0; i < reads.size(); ++i) {
      const auto it = oracle.find(reads[i].value());
      ASSERT_EQ(values[i], it == oracle.end() ? 0 : it->second);
    }
    for (const auto& w : writes) {
      oracle[w.var.value()] = w.value;
    }
  }
}

TEST(MvMemory, TimeIsMaxModuleLoad) {
  MvMemory mem(4096, {.n_modules = 64, .k_wise = 2, .seed = 5});
  // Find >= 3 variables hashing to the same module, request exactly those.
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_module;
  std::uint32_t hot_module = 0;
  for (std::uint32_t v = 0; v < 4096; ++v) {
    auto& bucket = by_module[mem.module_of(VarId(v))];
    bucket.push_back(v);
    if (bucket.size() >= 3) {
      hot_module = mem.module_of(VarId(v));
      break;
    }
  }
  const auto& hot = by_module[hot_module];
  ASSERT_GE(hot.size(), 3u);
  std::vector<VarId> reads;
  for (std::size_t i = 0; i < 3; ++i) {
    reads.emplace_back(hot[i]);
  }
  std::vector<Word> values(reads.size());
  const auto cost = mem.step(reads, values, {});
  EXPECT_EQ(cost.time, 3u);
}

TEST(MvMemory, AdversarialBatchForcesSerialization) {
  // The deterministic-vs-probabilistic contrast: with a known hash, an
  // adversary can pick n variables in one module and force n rounds.
  MvMemory mem(1 << 16, {.n_modules = 64, .k_wise = 2, .seed = 7});
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_module;
  for (std::uint32_t v = 0; v < (1 << 16); ++v) {
    by_module[mem.module_of(VarId(v))].push_back(v);
  }
  const auto& hottest =
      std::max_element(by_module.begin(), by_module.end(),
                       [](const auto& a, const auto& b) {
                         return a.second.size() < b.second.size();
                       })
          ->second;
  const std::size_t k = std::min<std::size_t>(hottest.size(), 64);
  std::vector<VarId> reads;
  for (std::size_t i = 0; i < k; ++i) {
    reads.emplace_back(hottest[i]);
  }
  std::vector<Word> values(reads.size());
  const auto cost = mem.step(reads, values, {});
  EXPECT_EQ(cost.time, k);  // fully serialized
}

TEST(MvMemory, RehashTriggersAboveThreshold) {
  MvMemory mem(1 << 14,
               {.n_modules = 4, .k_wise = 2, .seed = 9, .rehash_threshold = 2});
  std::vector<VarId> reads;
  for (std::uint32_t v = 0; v < 64; ++v) {
    reads.emplace_back(v);
  }
  std::vector<Word> values(reads.size());
  mem.step(reads, values, {});
  // 64 distinct vars over 4 modules: some module holds >= 16 > 2.
  EXPECT_GE(mem.rehashes(), 1u);
}

TEST(MvMemory, MaxLoadGrowsSlowlyWithN) {
  // Balls-in-bins: n distinct vars into M = n modules gives max load
  // ~ log n / log log n in expectation — far below n.
  for (const std::uint32_t n : {256u, 1024u, 4096u}) {
    MvMemory mem(static_cast<std::uint64_t>(n) * n,
                 {.n_modules = n, .k_wise = 2, .seed = 13});
    util::Rng rng(17);
    util::RunningStats max_loads;
    for (int trial = 0; trial < 10; ++trial) {
      const auto vars =
          rng.sample_without_replacement(static_cast<std::uint64_t>(n) * n, n);
      std::vector<VarId> reads;
      reads.reserve(vars.size());
      for (const auto v : vars) {
        reads.emplace_back(static_cast<std::uint32_t>(v));
      }
      std::vector<Word> values(reads.size());
      const auto cost = mem.step(reads, values, {});
      max_loads.add(static_cast<double>(cost.time));
    }
    const double bound = 4.0 * std::log2(n) / std::log2(std::log2(n));
    EXPECT_LT(max_loads.mean(), bound) << "n=" << n;
    EXPECT_GE(max_loads.mean(), 2.0) << "n=" << n;
  }
}

}  // namespace
}  // namespace pramsim::hashing
